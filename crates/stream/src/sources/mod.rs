//! Network ingestion sources (MoniLog §III "collect": logs arrive from the
//! monitored infrastructure, not from files on the monitor's own disk).
//!
//! Four source kinds, all multiplexed on one [`crate::net::EventLoop`]
//! thread together with the `/metrics` endpoint:
//!
//! - **TCP syslog** — RFC 3164/5424 messages under RFC 6587 framing
//!   (LF-delimited or octet-counted, auto-detected per connection).
//! - **UDP syslog** — one message per datagram (RFC 5426).
//! - **HTTP bulk ingest** — `POST /ingest` with a newline-delimited body;
//!   413 for oversized bodies, 429 when the ingest queue cannot take the
//!   batch.
//! - **File tail** — follow a live log file with inode+offset cursors that
//!   the caller persists through the checkpoint manifest, so a restart
//!   resumes exactly where ingestion stopped.
//!
//! Every source feeds one bounded [`SourceQueue`]; the consumer (the CLI's
//! durable run loop, or [`crate::supervisor::SupervisedParseService`]
//! `submit_batch` in library use) drains it in batches. When the queue is
//! full the configured [`OverloadPolicy`] applies *at the source boundary*:
//!
//! - [`OverloadPolicy::Block`]: TCP connections and file tails stop
//!   reading (dropping read interest lets the kernel socket buffer fill and
//!   push backpressure to the sender); HTTP answers 429; UDP must drop.
//! - [`OverloadPolicy::ShedToCatchAll`]: the line is dropped and counted
//!   (`sources_lines_shed`) — the parse-stage catch-all accounting only
//!   exists once a line is *in* the pipeline, so at the boundary shedding
//!   is a counted drop.
//! - [`OverloadPolicy::DeadLetter`]: the raw line is appended to the
//!   dead-letter log with an overload marker for later replay.

pub mod framing;
mod http;
pub mod inflate;
pub mod syslog;
mod tail;

pub use framing::{FrameDecoder, FrameError};
pub use syslog::{parse_syslog, SyslogMessage};
pub use tail::{glob_match, GlobResume, TailCursor, TailGlobSpec, TailSpec, MAX_TAIL_SLOTS};

use crate::config::OverloadPolicy;
use crate::durable::DeadLetterLog;
use crate::export::{bind_reusable, register_metrics_listener, MetricsService};
use crate::metrics::PipelineMetrics;
use crate::net::{AsLoopFd, EventLoop, Handler, Interest, LoopCtx, Next};
use crate::observe::MetricsRegistry;
use crate::supervisor::{DeadLetter, FailureReason};
use crate::trace::Tracer;
use monilog_model::ByteLine;
use monilog_model::SourceId;
use std::collections::VecDeque;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

/// Stable source ids: the merge layer dedups by `(source, seq)` and the
/// durable manifest tracks per-source positions, so ids must never be
/// reassigned. `SourceId(0)` stays the CLI's file-replay source.
pub const SYSLOG_TCP_SOURCE: SourceId = SourceId(2);
pub const SYSLOG_UDP_SOURCE: SourceId = SourceId(3);
pub const HTTP_SOURCE: SourceId = SourceId(4);
/// Tail source `i` ingests as `SourceId(TAIL_SOURCE_BASE + i)`.
pub const TAIL_SOURCE_BASE: u16 = 8;

/// Cap on bytes consumed from one connection per readiness round, for
/// fairness between connections and to bound the `pending` spill when the
/// queue back-pressures mid-round.
const READ_QUANTUM: usize = 256 * 1024;

/// One ingested line, queued for the consumer to journal and submit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceEvent {
    pub source: SourceId,
    /// The payload line (for syslog: the MSG field, so network-fed and
    /// file-fed ingestion of the same corpus are byte-identical).
    /// Arena-backed: the consumer journals and submits it without
    /// re-allocating; `String` materializes only at the dead-letter edge.
    pub line: ByteLine,
    /// For tail lines: `(tail index, cursor after this line)` — persist it
    /// alongside the journal seq to resume the tail after a restart.
    pub cursor: Option<(usize, TailCursor)>,
    /// For router-fed lines: the wire sequence number assigned by the
    /// router. The consumer journals under exactly this seq and dedups
    /// replays against it; local sources leave it `None`.
    pub seq: Option<u64>,
}

/// Configuration for [`SourcesServer::spawn`].
#[derive(Debug, Clone)]
pub struct SourcesConfig {
    pub syslog_tcp: Option<SocketAddr>,
    pub syslog_udp: Option<SocketAddr>,
    pub http: Option<SocketAddr>,
    pub tails: Vec<TailSpec>,
    /// Glob tails (`--tail 'dir/app-*.log'`): the directory is rescanned
    /// at runtime and every newly matching file gets its own tail slot.
    pub tail_globs: Vec<TailGlobSpec>,
    /// Bound on queued-but-not-consumed lines across all sources.
    pub queue_capacity: usize,
    /// Largest accepted syslog frame / tail line.
    pub max_frame_bytes: usize,
    /// Largest accepted HTTP ingest body.
    pub max_http_body_bytes: usize,
    /// TCP connections idle longer than this are closed (0 disables).
    pub idle_timeout: Duration,
    pub on_overload: OverloadPolicy,
    /// RFC 3164 timestamps carry no year; this fills it in.
    pub assumed_year: i32,
    /// When set, the server also maintains a client link to a cluster
    /// router (`monilog monitor --join`), feeding router-assigned sources
    /// through the same ingest queue.
    pub router: Option<crate::cluster::link::RouterLinkConfig>,
}

impl Default for SourcesConfig {
    fn default() -> Self {
        SourcesConfig {
            syslog_tcp: None,
            syslog_udp: None,
            http: None,
            tails: Vec::new(),
            tail_globs: Vec::new(),
            queue_capacity: 8192,
            max_frame_bytes: 1024 * 1024,
            max_http_body_bytes: 8 * 1024 * 1024,
            idle_timeout: Duration::from_secs(300),
            on_overload: OverloadPolicy::Block,
            assumed_year: current_year(),
            router: None,
        }
    }
}

/// Current UTC year derived from the system clock (no chrono dependency).
pub fn current_year() -> i32 {
    let secs = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    // days-from-civil inverse, year part only.
    let days = (secs / 86_400) as i64 + 719_468;
    let era = days.div_euclid(146_097);
    let doe = days.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    (y + i64::from(m <= 2)) as i32
}

/// Consumer half of the bounded ingest queue.
pub struct SourceQueue {
    rx: Receiver<SourceEvent>,
    depth: Arc<AtomicUsize>,
}

impl SourceQueue {
    /// Wait up to `wait` for the first event, then drain up to `max` without
    /// blocking. Returns an empty vec on timeout.
    pub fn recv_batch(&self, max: usize, wait: Duration) -> Vec<SourceEvent> {
        let mut out = Vec::new();
        match self.rx.recv_timeout(wait) {
            Ok(ev) => {
                self.depth.fetch_sub(1, Ordering::SeqCst);
                out.push(ev);
            }
            Err(_) => return out,
        }
        while out.len() < max {
            match self.rx.try_recv() {
                Ok(ev) => {
                    self.depth.fetch_sub(1, Ordering::SeqCst);
                    out.push(ev);
                }
                Err(_) => break,
            }
        }
        out
    }

    /// Lines currently queued (approximate under concurrency).
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::SeqCst)
    }
}

/// Producer half, shared by every source handler (and the cluster link,
/// which feeds router-assigned sources through the same bounded queue).
#[derive(Clone)]
pub(crate) struct QueueTx {
    tx: SyncSender<SourceEvent>,
    depth: Arc<AtomicUsize>,
    capacity: usize,
}

impl QueueTx {
    pub(crate) fn try_push(&self, ev: SourceEvent) -> Result<(), SourceEvent> {
        match self.tx.try_send(ev) {
            Ok(()) => {
                self.depth.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }
            Err(TrySendError::Full(ev)) | Err(TrySendError::Disconnected(ev)) => Err(ev),
        }
    }

    /// Free queue slots (approximate; used for the HTTP 429 admission check).
    fn free(&self) -> usize {
        self.capacity
            .saturating_sub(self.depth.load(Ordering::SeqCst))
    }
}

/// State shared by every handler on the sources loop.
struct Shared {
    tx: QueueTx,
    metrics: Arc<PipelineMetrics>,
    /// [`OverloadPolicy`] ordinal. Atomic so a hot config reload
    /// ([`SourcesServer::set_overload_policy`]) can flip it mid-stream
    /// without pausing the loop; each enqueue reads the current value.
    policy: AtomicU8,
    dlq: Option<Arc<DeadLetterLog>>,
    max_frame_bytes: usize,
    max_http_body_bytes: usize,
    idle_timeout: Duration,
    assumed_year: i32,
    /// Overload drops diverted to the dead-letter log carry a synthetic,
    /// monotonically decreasing-from-max seq — the real journal seq is
    /// assigned by the consumer, which these lines never reach.
    dlq_seq: AtomicUsize,
    /// Next free tail slot for glob-discovered files, seeded above every
    /// static tail and every slot recovered from the checkpoint manifest.
    next_tail_slot: AtomicUsize,
    /// Every live tail as `(slot, path)` — static and glob-discovered —
    /// so the consumer can persist path-keyed cursors for files it never
    /// saw in its configuration ([`SourcesServer::tail_paths`]).
    tail_registry: std::sync::Mutex<Vec<(usize, std::path::PathBuf)>>,
}

/// `OverloadPolicy` <-> atomic-cell ordinal (the enum itself cannot live
/// in an atomic).
fn policy_ordinal(p: OverloadPolicy) -> u8 {
    match p {
        OverloadPolicy::Block => 0,
        OverloadPolicy::ShedToCatchAll => 1,
        OverloadPolicy::DeadLetter => 2,
    }
}

fn policy_from_ordinal(v: u8) -> OverloadPolicy {
    match v {
        1 => OverloadPolicy::ShedToCatchAll,
        2 => OverloadPolicy::DeadLetter,
        _ => OverloadPolicy::Block,
    }
}

impl Shared {
    fn policy(&self) -> OverloadPolicy {
        policy_from_ordinal(self.policy.load(Ordering::Relaxed))
    }

    /// Enqueue a line; on a full queue apply the overload policy.
    /// `Err(event)` means the caller must hold the line and pause (Block
    /// policy on a pausable source); `Ok` means the line was consumed one
    /// way or another.
    fn push_or_apply_policy(&self, ev: SourceEvent, can_pause: bool) -> Result<(), SourceEvent> {
        match self.tx.try_push(ev) {
            Ok(()) => {
                PipelineMetrics::add(&self.metrics.sources_lines, 1);
                Ok(())
            }
            Err(ev) => match self.policy() {
                OverloadPolicy::Block if can_pause => Err(ev),
                OverloadPolicy::Block | OverloadPolicy::ShedToCatchAll => {
                    PipelineMetrics::add(&self.metrics.sources_lines_shed, 1);
                    Ok(())
                }
                OverloadPolicy::DeadLetter => {
                    self.quarantine(ev.line);
                    Ok(())
                }
            },
        }
    }

    fn quarantine(&self, line: ByteLine) {
        PipelineMetrics::add(&self.metrics.sources_dead_lettered, 1);
        if let Some(dlq) = &self.dlq {
            let seq = self.dlq_seq.fetch_add(1, Ordering::SeqCst) as u64;
            let _ = dlq.append(&[DeadLetter {
                seq: u64::MAX - seq,
                shard: None,
                line: line.into_string(),
                reason: FailureReason::Overload,
                attempts: 0,
            }]);
        }
    }
}

/// Handle to the running sources server. Dropping stops the loop, closing
/// every listener and connection.
pub struct SourcesServer {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    shared: Arc<Shared>,
    syslog_tcp_addr: Option<SocketAddr>,
    syslog_udp_addr: Option<SocketAddr>,
    http_addr: Option<SocketAddr>,
    metrics_addr: Option<SocketAddr>,
    mailbox: Option<Arc<crate::cluster::ClusterMailbox>>,
}

/// Optional `/metrics` endpoint mounted on the same loop as the sources.
/// With `ops` set, the live operations surface (`/reports`, `/status`,
/// `/readyz`, `/config`) is served from the same listener.
pub struct MetricsEndpoint {
    pub addr: SocketAddr,
    pub interval: Duration,
    pub tracer: Option<Arc<Tracer>>,
    pub ops: Option<Arc<crate::ops::OpsState>>,
}

impl SourcesServer {
    /// Bind every configured source, mount the optional metrics endpoint on
    /// the same event loop, and start serving on a dedicated thread.
    /// Returns the server handle plus the consumer end of the ingest queue.
    pub fn spawn(
        config: SourcesConfig,
        registry: Arc<MetricsRegistry>,
        dlq: Option<Arc<DeadLetterLog>>,
        metrics_endpoint: Option<MetricsEndpoint>,
    ) -> io::Result<(SourcesServer, SourceQueue)> {
        let (tx, rx) = std::sync::mpsc::sync_channel(config.queue_capacity.max(1));
        let depth = Arc::new(AtomicUsize::new(0));
        let queue_tx = QueueTx {
            tx,
            depth: depth.clone(),
            capacity: config.queue_capacity.max(1),
        };
        // Glob slots start above every static tail and every slot a
        // previous life handed out (recovered through `known`), so a
        // restart never reassigns a slot to a different file.
        let mut next_tail_slot = config.tails.len();
        for glob in &config.tail_globs {
            for k in &glob.known {
                next_tail_slot = next_tail_slot.max(k.slot + 1);
            }
        }
        let static_tails: Vec<(usize, std::path::PathBuf)> = config
            .tails
            .iter()
            .enumerate()
            .map(|(i, spec)| (i, spec.path.clone()))
            .collect();
        let shared = Arc::new(Shared {
            tx: queue_tx,
            metrics: registry.counters().clone(),
            policy: AtomicU8::new(policy_ordinal(config.on_overload)),
            dlq,
            max_frame_bytes: config.max_frame_bytes,
            max_http_body_bytes: config.max_http_body_bytes,
            idle_timeout: config.idle_timeout,
            assumed_year: config.assumed_year,
            dlq_seq: AtomicUsize::new(0),
            next_tail_slot: AtomicUsize::new(next_tail_slot),
            tail_registry: std::sync::Mutex::new(static_tails),
        });

        let mut event_loop = EventLoop::new()?;
        let mut syslog_tcp_addr = None;
        let mut syslog_udp_addr = None;
        let mut http_addr = None;
        let mut metrics_addr = None;

        if let Some(addr) = config.syslog_tcp {
            let listener = bind_reusable(addr)?;
            syslog_tcp_addr = Some(listener.local_addr()?);
            listener.set_nonblocking(true)?;
            let fd = listener.loop_fd();
            event_loop.register(
                fd,
                Box::new(SyslogListener {
                    listener,
                    shared: shared.clone(),
                }),
            )?;
        }
        if let Some(addr) = config.syslog_udp {
            let socket = UdpSocket::bind(addr)?;
            syslog_udp_addr = Some(socket.local_addr()?);
            socket.set_nonblocking(true)?;
            let fd = socket.loop_fd();
            event_loop.register(
                fd,
                Box::new(SyslogUdp {
                    socket,
                    shared: shared.clone(),
                    buf: vec![0u8; 64 * 1024],
                }),
            )?;
        }
        if let Some(addr) = config.http {
            let listener = bind_reusable(addr)?;
            http_addr = Some(listener.local_addr()?);
            listener.set_nonblocking(true)?;
            let fd = listener.loop_fd();
            event_loop.register(
                fd,
                Box::new(http::IngestListener::new(listener, shared.clone())),
            )?;
        }
        for (index, spec) in config.tails.iter().enumerate() {
            event_loop.register_timer(Box::new(tail::FileTailHandler::new(
                spec.clone(),
                index,
                shared.clone(),
            )));
        }
        for glob in &config.tail_globs {
            event_loop.register_timer(Box::new(tail::GlobTailHandler::new(
                glob.clone(),
                shared.clone(),
            )));
        }
        if let Some(ep) = metrics_endpoint {
            let listener = bind_reusable(ep.addr)?;
            metrics_addr = Some(listener.local_addr()?);
            listener.set_nonblocking(true)?;
            let service = Arc::new(MetricsService::new(registry, ep.tracer, ep.ops));
            register_metrics_listener(&mut event_loop, listener, service, ep.interval)?;
        }
        let mut mailbox = None;
        if let Some(link_cfg) = config.router.clone() {
            let mb = crate::cluster::ClusterMailbox::new(link_cfg.node.clone());
            event_loop.register_timer(Box::new(crate::cluster::link::LinkSupervisor::new(
                link_cfg,
                shared.tx.clone(),
                mb.clone(),
            )));
            mailbox = Some(mb);
        }

        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handle = std::thread::Builder::new()
            .name("monilog-sources".into())
            .spawn(move || event_loop.run(stop_flag))
            .expect("spawn sources thread");

        Ok((
            SourcesServer {
                stop,
                handle: Some(handle),
                shared,
                syslog_tcp_addr,
                syslog_udp_addr,
                http_addr,
                metrics_addr,
                mailbox,
            },
            SourceQueue { rx, depth },
        ))
    }

    /// Swap the overload policy live (the `POST /config on-overload=...`
    /// path). Takes effect on the next enqueue; no lines in flight are
    /// dropped by the swap itself.
    pub fn set_overload_policy(&self, policy: OverloadPolicy) {
        self.shared
            .policy
            .store(policy_ordinal(policy), Ordering::Relaxed);
    }

    /// The overload policy currently in force.
    pub fn overload_policy(&self) -> OverloadPolicy {
        self.shared.policy()
    }

    pub fn syslog_tcp_addr(&self) -> Option<SocketAddr> {
        self.syslog_tcp_addr
    }
    pub fn syslog_udp_addr(&self) -> Option<SocketAddr> {
        self.syslog_udp_addr
    }
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_addr
    }
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// The cluster link mailbox, when this server was spawned with a
    /// router link (`--join`). The consumer polls it each ingest round.
    pub fn cluster_mailbox(&self) -> Option<Arc<crate::cluster::ClusterMailbox>> {
        self.mailbox.clone()
    }

    /// Every live tail as `(slot, path)` — static tails plus files a glob
    /// discovered at runtime. The consumer resolves the path of a cursor
    /// index it has never seen here, so the persisted cursor stays
    /// path-keyed and survives restarts.
    pub fn tail_paths(&self) -> Vec<(usize, std::path::PathBuf)> {
        self.shared
            .tail_registry
            .lock()
            .map(|reg| reg.clone())
            .unwrap_or_default()
    }
}

impl Drop for SourcesServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Accepts TCP syslog connections.
struct SyslogListener {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Handler for SyslogListener {
    fn ready(&mut self, _r: bool, _w: bool, ctx: &mut LoopCtx<'_>) -> Next {
        loop {
            match self.listener.accept() {
                Ok((conn, _peer)) => {
                    if conn.set_nonblocking(true).is_err() {
                        continue;
                    }
                    PipelineMetrics::add(&self.shared.metrics.sources_connections, 1);
                    let fd = conn.loop_fd();
                    ctx.register(fd, Box::new(SyslogConn::new(conn, self.shared.clone())));
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return Next::Keep,
                Err(_) => return Next::Keep,
            }
        }
    }
}

/// One TCP syslog connection: framing + parsing + backpressure.
struct SyslogConn {
    conn: TcpStream,
    shared: Arc<Shared>,
    buf: Vec<u8>,
    decoder: FrameDecoder,
    /// Lines decoded but not yet accepted by the queue (Block policy).
    pending: VecDeque<ByteLine>,
    last_activity: Instant,
    paused: bool,
    eof: bool,
}

impl SyslogConn {
    fn new(conn: TcpStream, shared: Arc<Shared>) -> Self {
        let max = shared.max_frame_bytes;
        SyslogConn {
            conn,
            shared,
            buf: Vec::new(),
            decoder: FrameDecoder::new(max),
            pending: VecDeque::new(),
            last_activity: Instant::now(),
            paused: false,
            eof: false,
        }
    }

    fn close(&self) -> Next {
        PipelineMetrics::add(&self.shared.metrics.sources_disconnects, 1);
        Next::Close
    }

    /// Try to move pending lines into the queue. Returns false while the
    /// queue still refuses lines.
    fn flush_pending(&mut self) -> bool {
        while let Some(line) = self.pending.pop_front() {
            // A held line can always pause again: it already survived one
            // full-queue round.
            let ev = SourceEvent {
                source: SYSLOG_TCP_SOURCE,
                line,
                cursor: None,
                seq: None,
            };
            if let Err(ev) = self.shared.push_or_apply_policy(ev, true) {
                self.pending.push_front(ev.line);
                return false;
            }
        }
        true
    }

    fn ingest_frames(&mut self, frames: Vec<String>) {
        for line in frames {
            let msg = ByteLine::from_string(parse_syslog(&line, self.shared.assumed_year).msg);
            if self.paused {
                self.pending.push_back(msg);
                continue;
            }
            let ev = SourceEvent {
                source: SYSLOG_TCP_SOURCE,
                line: msg,
                cursor: None,
                seq: None,
            };
            if let Err(ev) = self.shared.push_or_apply_policy(ev, true) {
                self.pending.push_back(ev.line);
                self.paused = true;
                PipelineMetrics::add(&self.shared.metrics.sources_paused, 1);
            }
        }
    }
}

impl Handler for SyslogConn {
    fn ready(&mut self, readable: bool, _writable: bool, _ctx: &mut LoopCtx<'_>) -> Next {
        if !readable || self.paused || self.eof {
            return Next::Keep;
        }
        let mut consumed = 0usize;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.conn.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    let torn = self.decoder.finish(&mut self.buf);
                    if torn > 0 {
                        PipelineMetrics::add(&self.shared.metrics.sources_frame_errors, torn);
                    }
                    break;
                }
                Ok(n) => {
                    self.last_activity = Instant::now();
                    self.buf.extend_from_slice(&chunk[..n]);
                    consumed += n;
                    let mut frames = Vec::new();
                    if self.decoder.drain(&mut self.buf, &mut frames).is_err() {
                        // Octet-count desync is unrecoverable: drop the
                        // connection (RFC 6587 §3.4.1).
                        PipelineMetrics::add(&self.shared.metrics.sources_frame_errors, 1);
                        return self.close();
                    }
                    self.ingest_frames(frames);
                    if consumed >= READ_QUANTUM || self.paused {
                        break;
                    }
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return self.close(),
            }
        }
        // Oversized LF lines are dropped by the decoder; account them.
        let dropped = std::mem::take(&mut self.decoder.dropped);
        if dropped > 0 {
            PipelineMetrics::add(&self.shared.metrics.sources_frame_errors, dropped);
        }
        if self.eof && self.pending.is_empty() {
            return self.close();
        }
        Next::Keep
    }

    fn tick(&mut self, now: Instant, _ctx: &mut LoopCtx<'_>) -> Next {
        if (!self.pending.is_empty() || self.paused) && self.flush_pending() {
            self.paused = false;
            self.last_activity = now;
        }
        if self.eof && self.pending.is_empty() {
            return self.close();
        }
        if !self.shared.idle_timeout.is_zero()
            && self.pending.is_empty()
            && now.duration_since(self.last_activity) >= self.shared.idle_timeout
        {
            return self.close();
        }
        Next::Keep
    }

    fn interest(&self) -> Interest {
        Interest {
            read: !self.paused && !self.eof,
            write: false,
        }
    }
}

/// UDP syslog: one message per datagram. UDP cannot backpressure, so a full
/// queue always drops (counted; dead-lettered under that policy).
struct SyslogUdp {
    socket: UdpSocket,
    shared: Arc<Shared>,
    buf: Vec<u8>,
}

impl Handler for SyslogUdp {
    fn ready(&mut self, readable: bool, _w: bool, _ctx: &mut LoopCtx<'_>) -> Next {
        if !readable {
            return Next::Keep;
        }
        let mut consumed = 0usize;
        loop {
            match self.socket.recv_from(&mut self.buf) {
                Ok((n, _peer)) => {
                    consumed += n;
                    if n == self.buf.len() {
                        // recv() silently truncates datagrams larger than
                        // the buffer; a exactly-full read is the tell.
                        PipelineMetrics::add(&self.shared.metrics.sources_udp_truncated, 1);
                    }
                    let raw = String::from_utf8_lossy(&self.buf[..n]);
                    let trimmed = raw.trim_end_matches(['\r', '\n']);
                    if trimmed.is_empty() {
                        continue;
                    }
                    let msg = parse_syslog(trimmed, self.shared.assumed_year).msg;
                    let ev = SourceEvent {
                        source: SYSLOG_UDP_SOURCE,
                        line: msg.into(),
                        cursor: None,
                        seq: None,
                    };
                    // can_pause=false: dropping is UDP's only overload move.
                    let _ = self.shared.push_or_apply_policy(ev, false);
                    if consumed >= READ_QUANTUM {
                        break;
                    }
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        Next::Keep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn test_config(queue: usize) -> SourcesConfig {
        SourcesConfig {
            syslog_tcp: Some("127.0.0.1:0".parse().unwrap()),
            syslog_udp: Some("127.0.0.1:0".parse().unwrap()),
            http: Some("127.0.0.1:0".parse().unwrap()),
            queue_capacity: queue,
            assumed_year: 2026,
            ..SourcesConfig::default()
        }
    }

    fn registry() -> Arc<MetricsRegistry> {
        MetricsRegistry::shared_with_shards(1)
    }

    fn drain_for(queue: &SourceQueue, want: usize, secs: u64) -> Vec<SourceEvent> {
        let deadline = Instant::now() + Duration::from_secs(secs);
        let mut got = Vec::new();
        while got.len() < want && Instant::now() < deadline {
            got.extend(queue.recv_batch(256, Duration::from_millis(20)));
        }
        got
    }

    #[test]
    fn tcp_syslog_lf_and_octet_framing_end_to_end() {
        let reg = registry();
        let (server, queue) = SourcesServer::spawn(test_config(1024), reg, None, None).unwrap();
        let addr = server.syslog_tcp_addr().unwrap();

        // LF-framed connection.
        let mut lf = TcpStream::connect(addr).unwrap();
        lf.write_all(b"<14>1 2026-08-08T12:00:00Z h app - - - first line\n")
            .unwrap();
        lf.write_all(b"plain second line\n").unwrap();
        drop(lf);

        // Octet-counted connection.
        let mut oc = TcpStream::connect(addr).unwrap();
        let msg = "<14>1 2026-08-08T12:00:00Z h app - - - third line";
        oc.write_all(format!("{} {}", msg.len(), msg).as_bytes())
            .unwrap();
        drop(oc);

        let mut lines: Vec<String> = drain_for(&queue, 3, 5)
            .into_iter()
            .map(|e| e.line.into_string())
            .collect();
        lines.sort();
        assert_eq!(lines, vec!["first line", "plain second line", "third line"]);
    }

    #[test]
    fn udp_syslog_datagrams_arrive() {
        let reg = registry();
        let (server, queue) = SourcesServer::spawn(test_config(64), reg, None, None).unwrap();
        let addr = server.syslog_udp_addr().unwrap();
        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        sock.send_to(b"<13>Feb  5 17:32:18 host app: datagram payload", addr)
            .unwrap();
        let got = drain_for(&queue, 1, 5);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].line, "datagram payload");
        assert_eq!(got[0].source, SYSLOG_UDP_SOURCE);
    }

    #[test]
    fn block_policy_pauses_the_connection_and_loses_nothing() {
        let reg = registry();
        let mut cfg = test_config(4); // tiny queue
        cfg.on_overload = OverloadPolicy::Block;
        let (server, queue) = SourcesServer::spawn(cfg, reg.clone(), None, None).unwrap();
        let addr = server.syslog_tcp_addr().unwrap();

        let total = 200usize;
        let mut conn = TcpStream::connect(addr).unwrap();
        for i in 0..total {
            conn.write_all(format!("line number {i}\n").as_bytes())
                .unwrap();
        }
        drop(conn);

        // Slowly drain: every line must come through despite the size-4
        // queue, because the source pauses instead of dropping.
        let got = drain_for(&queue, total, 20);
        assert_eq!(got.len(), total, "Block policy must not lose lines");
        let lines: Vec<&str> = got.iter().map(|e| e.line.as_str()).collect();
        for (i, line) in lines.iter().enumerate() {
            assert_eq!(*line, format!("line number {i}"), "order preserved");
        }
        assert_eq!(reg.counters().sources_lines_shed.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn overload_policy_hot_swaps_without_losing_lines() {
        let reg = registry();
        let mut cfg = test_config(4); // tiny queue
        cfg.on_overload = OverloadPolicy::ShedToCatchAll;
        let (server, queue) = SourcesServer::spawn(cfg, reg.clone(), None, None).unwrap();
        assert_eq!(server.overload_policy(), OverloadPolicy::ShedToCatchAll);

        // Flip to Block before any traffic: the saturated queue must now
        // pause the connection instead of shedding — zero lines lost.
        server.set_overload_policy(OverloadPolicy::Block);
        assert_eq!(server.overload_policy(), OverloadPolicy::Block);

        let addr = server.syslog_tcp_addr().unwrap();
        let total = 200usize;
        let mut conn = TcpStream::connect(addr).unwrap();
        for i in 0..total {
            conn.write_all(format!("swap line {i}\n").as_bytes())
                .unwrap();
        }
        drop(conn);
        let got = drain_for(&queue, total, 20);
        assert_eq!(got.len(), total, "post-swap Block policy must not drop");
        assert_eq!(reg.counters().sources_lines_shed.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn shed_policy_drops_and_counts_when_saturated() {
        let reg = registry();
        let mut cfg = test_config(2);
        cfg.on_overload = OverloadPolicy::ShedToCatchAll;
        let (server, queue) = SourcesServer::spawn(cfg, reg.clone(), None, None).unwrap();
        let addr = server.syslog_tcp_addr().unwrap();

        let mut conn = TcpStream::connect(addr).unwrap();
        for i in 0..100 {
            conn.write_all(format!("flood {i}\n").as_bytes()).unwrap();
        }
        drop(conn);
        std::thread::sleep(Duration::from_millis(500));
        let got = drain_for(&queue, 100, 1);
        assert!(got.len() < 100, "tiny queue + shed must drop some lines");
        let shed = reg.counters().sources_lines_shed.load(Ordering::SeqCst);
        assert!(shed > 0, "sheds must be counted");
        assert_eq!(got.len() as u64 + shed, 100, "every line accounted for");
    }

    #[test]
    fn dead_letter_policy_diverts_to_the_dlq() {
        let dir = std::env::temp_dir().join(format!("monilog-src-dlq-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dlq = Arc::new(DeadLetterLog::open(dir.join("dead_letter.jsonl"), 1 << 20).unwrap());
        let reg = registry();
        let mut cfg = test_config(2);
        cfg.on_overload = OverloadPolicy::DeadLetter;
        let (server, queue) =
            SourcesServer::spawn(cfg, reg.clone(), Some(dlq.clone()), None).unwrap();
        let addr = server.syslog_tcp_addr().unwrap();

        let mut conn = TcpStream::connect(addr).unwrap();
        for i in 0..50 {
            conn.write_all(format!("burst {i}\n").as_bytes()).unwrap();
        }
        drop(conn);
        std::thread::sleep(Duration::from_millis(500));
        let got = drain_for(&queue, 50, 1);
        let letters = dlq.load().unwrap();
        assert!(!letters.is_empty(), "overload must dead-letter lines");
        assert!(letters.iter().all(|l| l.reason == FailureReason::Overload));
        assert_eq!(got.len() + letters.len(), 50, "every line accounted for");
        drop(server);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_endpoint_rides_the_same_loop() {
        let reg = registry();
        let (server, _queue) = SourcesServer::spawn(
            test_config(64),
            reg,
            None,
            Some(MetricsEndpoint {
                addr: "127.0.0.1:0".parse().unwrap(),
                interval: Duration::from_millis(100),
                tracer: None,
                ops: None,
            }),
        )
        .unwrap();
        let addr = server.metrics_addr().unwrap();
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(
            response.contains("monilog_sources_lines_total"),
            "{response}"
        );
    }

    #[test]
    fn frame_desync_closes_the_connection_and_counts() {
        let reg = registry();
        let (server, queue) =
            SourcesServer::spawn(test_config(64), reg.clone(), None, None).unwrap();
        let addr = server.syslog_tcp_addr().unwrap();
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(b"99999999999 never").unwrap(); // 11-digit header
        let mut buf = [0u8; 16];
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Server closes: read returns 0.
        assert_eq!(conn.read(&mut buf).unwrap_or(0), 0);
        assert!(queue.recv_batch(16, Duration::from_millis(100)).is_empty());
        assert!(reg.counters().sources_frame_errors.load(Ordering::SeqCst) >= 1);
    }
}
