//! Syslog message parsing: RFC 5424 (`<pri>1 TIMESTAMP HOST APP ...`) and
//! RFC 3164 (`<pri>Mmm dd hh:mm:ss host tag: msg`), with a permissive
//! fallback for bare lines.
//!
//! The parser extracts the envelope for observability, but the pipeline is
//! fed the MSG part only: a corpus shipped over syslog must produce the
//! byte-identical anomaly set as the same corpus read from a file, so the
//! envelope never leaks into templates.

/// Parsed syslog envelope + message. Never fails: unparseable input becomes
/// a `user.info` message carrying the raw line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyslogMessage {
    pub facility: u8,
    pub severity: u8,
    /// Epoch milliseconds, when the envelope carried a parseable timestamp.
    pub timestamp_ms: Option<u64>,
    pub hostname: Option<String>,
    /// APP-NAME (RFC 5424) or TAG (RFC 3164).
    pub app: Option<String>,
    /// The MSG field — what the pipeline ingests.
    pub msg: String,
}

const DEFAULT_PRI: u16 = 14; // user.info

/// Parse one syslog frame. `assumed_year` fills in RFC 3164 timestamps,
/// which carry no year (pass the current year in production; pin in tests).
pub fn parse_syslog(raw: &str, assumed_year: i32) -> SyslogMessage {
    let (pri, rest) = parse_pri(raw);
    let facility = (pri >> 3) as u8;
    let severity = (pri & 0x7) as u8;

    // RFC 5424: VERSION "1" SP after the pri.
    if let Some(r) = rest.strip_prefix("1 ") {
        if let Some(m) = parse_rfc5424(facility, severity, r) {
            return m;
        }
    }
    if let Some(m) = parse_rfc3164(facility, severity, rest, assumed_year) {
        return m;
    }
    SyslogMessage {
        facility,
        severity,
        timestamp_ms: None,
        hostname: None,
        app: None,
        msg: rest.to_string(),
    }
}

fn parse_pri(raw: &str) -> (u16, &str) {
    let bytes = raw.as_bytes();
    if bytes.first() == Some(&b'<') {
        if let Some(close) = raw[..raw.len().min(6)].find('>') {
            if let Ok(pri) = raw[1..close].parse::<u16>() {
                if pri <= 191 {
                    return (pri, &raw[close + 1..]);
                }
            }
        }
    }
    (DEFAULT_PRI, raw)
}

fn nil(field: &str) -> Option<String> {
    if field == "-" {
        None
    } else {
        Some(field.to_string())
    }
}

fn parse_rfc5424(facility: u8, severity: u8, rest: &str) -> Option<SyslogMessage> {
    // TIMESTAMP SP HOSTNAME SP APP-NAME SP PROCID SP MSGID SP SD [SP MSG]
    let mut it = rest.splitn(6, ' ');
    let timestamp = it.next()?;
    let hostname = it.next()?;
    let app = it.next()?;
    let _procid = it.next()?;
    let _msgid = it.next()?;
    let tail = it.next().unwrap_or("");

    let timestamp_ms = if timestamp == "-" {
        None
    } else {
        Some(parse_rfc3339_ms(timestamp)?)
    };

    // Structured data: "-" or one or more bracketed [id k="v"] groups;
    // ']' inside values is escaped as '\]'.
    let msg = if let Some(after) = tail.strip_prefix('-') {
        after.strip_prefix(' ').unwrap_or(after)
    } else if tail.starts_with('[') {
        let mut end = 0usize;
        let b = tail.as_bytes();
        let mut depth = 0i32;
        let mut escaped = false;
        for (i, &c) in b.iter().enumerate() {
            if escaped {
                escaped = false;
                continue;
            }
            match c {
                b'\\' => escaped = true,
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 && b.get(i + 1) != Some(&b'[') {
                        end = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        if end == 0 {
            tail // unterminated SD: treat everything as MSG
        } else {
            tail[end..].strip_prefix(' ').unwrap_or(&tail[end..])
        }
    } else {
        return None; // SD must be "-" or "[..."
    };
    // Strip the optional UTF-8 BOM RFC 5424 allows before MSG.
    let msg = msg.strip_prefix('\u{feff}').unwrap_or(msg);

    Some(SyslogMessage {
        facility,
        severity,
        timestamp_ms,
        hostname: nil(hostname),
        app: nil(app),
        msg: msg.to_string(),
    })
}

fn parse_rfc3164(
    facility: u8,
    severity: u8,
    rest: &str,
    assumed_year: i32,
) -> Option<SyslogMessage> {
    // "Mmm dd hh:mm:ss host tag[pid]: msg" — dd may be space-padded.
    let b = rest.as_bytes();
    if b.len() < 16 {
        return None;
    }
    let month = month_number(&rest[0..3])?;
    if b[3] != b' ' {
        return None;
    }
    let day: u32 = rest[4..6].trim_start().parse().ok()?;
    if !(1..=31).contains(&day) || b[6] != b' ' {
        return None;
    }
    let time = &rest[7..15];
    let tb = time.as_bytes();
    if tb[2] != b':' || tb[5] != b':' {
        return None;
    }
    let hh: u32 = time[0..2].parse().ok()?;
    let mm: u32 = time[3..5].parse().ok()?;
    let ss: u32 = time[6..8].parse().ok()?;
    if hh > 23 || mm > 59 || ss > 60 {
        return None;
    }
    let timestamp_ms = civil_to_epoch_ms(assumed_year, month, day, hh, mm, ss.min(59));

    let after = rest[15..].strip_prefix(' ').unwrap_or(&rest[15..]);
    let (hostname, after_host) = match after.split_once(' ') {
        Some((h, r)) => (nil(h), r),
        None => (nil(after), ""),
    };
    // TAG ends at ':' (optionally with "[pid]").
    let (app, msg) = match after_host.split_once(": ") {
        Some((tag, m)) => {
            let tag = tag.split('[').next().unwrap_or(tag);
            (nil(tag), m)
        }
        None => (None, after_host),
    };

    Some(SyslogMessage {
        facility,
        severity,
        timestamp_ms: Some(timestamp_ms),
        hostname,
        app,
        msg: msg.to_string(),
    })
}

fn month_number(name: &str) -> Option<u32> {
    const MONTHS: [&str; 12] = [
        "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
    ];
    MONTHS.iter().position(|&m| m == name).map(|i| i as u32 + 1)
}

/// "2026-08-08T12:34:56.789Z" / "...+02:00" -> epoch milliseconds.
fn parse_rfc3339_ms(ts: &str) -> Option<u64> {
    let b = ts.as_bytes();
    if b.len() < 20 || b[4] != b'-' || b[7] != b'-' || (b[10] != b'T' && b[10] != b't') {
        return None;
    }
    let year: i32 = ts[0..4].parse().ok()?;
    let month: u32 = ts[5..7].parse().ok()?;
    let day: u32 = ts[8..10].parse().ok()?;
    let hh: u32 = ts[11..13].parse().ok()?;
    if b[13] != b':' || b[16] != b':' {
        return None;
    }
    let mm: u32 = ts[14..16].parse().ok()?;
    let ss: u32 = ts[17..19].parse().ok()?;

    let mut i = 19;
    let mut frac_ms: u64 = 0;
    if b.get(i) == Some(&b'.') {
        i += 1;
        let start = i;
        while i < b.len() && b[i].is_ascii_digit() {
            i += 1;
        }
        let digits = &ts[start..i];
        if digits.is_empty() {
            return None;
        }
        let scaled = format!("{digits:0<3}");
        frac_ms = scaled[..3].parse().ok()?;
    }
    let offset_min: i64 = match b.get(i) {
        Some(&b'Z') | Some(&b'z') => 0,
        Some(&sign @ (b'+' | b'-')) => {
            let tz = &ts[i + 1..];
            let (oh, om) = tz.split_once(':')?;
            let oh: i64 = oh.parse().ok()?;
            let om: i64 = om.parse().ok()?;
            let total = oh * 60 + om;
            if sign == b'+' {
                total
            } else {
                -total
            }
        }
        _ => return None,
    };
    let base = civil_to_epoch_ms(year, month, day, hh, mm, ss) as i64 + frac_ms as i64;
    Some((base - offset_min * 60_000).max(0) as u64)
}

/// Civil date-time (UTC) -> epoch milliseconds, via the days-from-civil
/// algorithm. Saturates below the epoch.
fn civil_to_epoch_ms(year: i32, month: u32, day: u32, hh: u32, mm: u32, ss: u32) -> u64 {
    let y = i64::from(year) - i64::from(month <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let m = i64::from(month);
    let d = i64::from(day);
    let doy = (153 * (m + if m > 2 { -3 } else { 9 }) + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    let days = era * 146_097 + doe - 719_468;
    let secs = days * 86_400 + i64::from(hh) * 3_600 + i64::from(mm) * 60 + i64::from(ss);
    (secs.max(0) as u64) * 1_000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc5424_full_envelope() {
        let m = parse_syslog(
            "<165>1 2003-10-11T22:14:15.003Z mymachine.example.com evntslog 1234 ID47 \
             [exampleSDID@32473 iut=\"3\"] An application event",
            2026,
        );
        assert_eq!(m.facility, 20);
        assert_eq!(m.severity, 5);
        assert_eq!(m.hostname.as_deref(), Some("mymachine.example.com"));
        assert_eq!(m.app.as_deref(), Some("evntslog"));
        assert_eq!(m.msg, "An application event");
        assert_eq!(m.timestamp_ms, Some(1_065_910_455_003));
    }

    #[test]
    fn rfc5424_nil_fields_and_no_msg() {
        let m = parse_syslog("<34>1 - - - - - -", 2026);
        assert_eq!(m.hostname, None);
        assert_eq!(m.app, None);
        assert_eq!(m.timestamp_ms, None);
        assert_eq!(m.msg, "");
    }

    #[test]
    fn rfc5424_numeric_offset_timestamp() {
        let a = parse_syslog("<34>1 2026-08-08T12:00:00+02:00 h app - - - x", 2026);
        let b = parse_syslog("<34>1 2026-08-08T10:00:00Z h app - - - x", 2026);
        assert_eq!(a.timestamp_ms, b.timestamp_ms);
    }

    #[test]
    fn rfc3164_timestamp_without_year_uses_assumed_year() {
        let m = parse_syslog("<13>Feb  5 17:32:18 host su[123]: 'su root' failed", 2021);
        assert_eq!(m.hostname.as_deref(), Some("host"));
        assert_eq!(m.app.as_deref(), Some("su"));
        assert_eq!(m.msg, "'su root' failed");
        // 2021-02-05T17:32:18Z
        assert_eq!(m.timestamp_ms, Some(1_612_546_338_000));
        // Same envelope under a different assumed year shifts the timestamp.
        let m2 = parse_syslog("<13>Feb  5 17:32:18 host su[123]: 'su root' failed", 2020);
        assert!(m2.timestamp_ms < m.timestamp_ms);
    }

    #[test]
    fn bare_line_falls_back_to_user_info() {
        let m = parse_syslog("plain line with no envelope", 2026);
        assert_eq!((m.facility, m.severity), (1, 6));
        assert_eq!(m.msg, "plain line with no envelope");
        assert_eq!(m.timestamp_ms, None);
    }

    #[test]
    fn out_of_range_pri_is_treated_as_message_text() {
        let m = parse_syslog("<999>not really a pri", 2026);
        assert_eq!((m.facility, m.severity), (1, 6));
        assert_eq!(m.msg, "<999>not really a pri");
    }

    #[test]
    fn pipeline_payload_round_trips_through_the_envelope() {
        // The dash-format lines the pipeline ingests survive enveloping.
        let line = "2026-08-08 12:00:00,000 - api - INFO - request served in 12 ms";
        let framed = format!("<14>1 2026-08-08T12:00:00Z host monilog - - - {line}");
        let m = parse_syslog(&framed, 2026);
        assert_eq!(m.msg, line);
    }

    #[test]
    fn leap_day_math() {
        assert_eq!(
            civil_to_epoch_ms(2020, 2, 29, 23, 59, 59),
            1_583_020_799_000
        );
    }
}
