//! Checkpointed file tailing: follow a live log file, surviving rotation
//! (inode change) and truncation, and emit an inode+offset cursor with
//! every line so the consumer can persist resume positions through the
//! durable checkpoint manifest.
//!
//! The cursor protocol (mirrors vector's file-source checkpointing, adapted
//! to the WAL): `offset` only ever points at a *line boundary* of the file
//! with inode `inode`, and `last_seq` is the journal seq of the last line
//! emitted at that offset. On restart the consumer seeks to the cursor and
//! skips `journal_high_water - last_seq` lines — the lines that were
//! journaled after the checkpoint was cut — so replay and re-read never
//! double-ingest.
//!
//! Tails are timer-driven handlers on the shared event loop (regular files
//! are always "ready"; readiness APIs are useless for them), polling at the
//! loop tick.

use super::{Shared, SourceEvent, TAIL_SOURCE_BASE};
use crate::net::{Handler, Interest, LoopCtx, Next};
use monilog_model::ByteLine;
use monilog_model::SourceId;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Bytes read per poll tick, bounding loop stall per tail.
const TAIL_QUANTUM: usize = 256 * 1024;

/// Resume position for one tailed file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TailCursor {
    /// Inode the offset refers to; a mismatch on resume means the file was
    /// rotated and the tail restarts from offset 0 of the new file.
    pub inode: u64,
    /// Byte offset of the next unread line boundary.
    pub offset: u64,
    /// Journal seq of the last line emitted at `offset`.
    pub last_seq: u64,
}

/// One file to tail.
#[derive(Debug, Clone)]
pub struct TailSpec {
    pub path: PathBuf,
    /// Recovered cursor from the checkpoint manifest, if any.
    pub resume: Option<TailCursor>,
    /// Lines journaled past the checkpointed cursor (replayed from the
    /// WAL); the tail skips this many lines after seeking.
    pub skip_lines: u64,
}

impl TailSpec {
    pub fn new(path: impl Into<PathBuf>) -> Self {
        TailSpec {
            path: path.into(),
            resume: None,
            skip_lines: 0,
        }
    }
}

#[cfg(unix)]
fn inode_of(meta: &std::fs::Metadata) -> u64 {
    use std::os::unix::fs::MetadataExt;
    meta.ino()
}

#[cfg(not(unix))]
fn inode_of(_meta: &std::fs::Metadata) -> u64 {
    0 // no rotation detection without inodes; offsets still work
}

pub(super) struct FileTailHandler {
    path: PathBuf,
    source: SourceId,
    index: usize,
    shared: Arc<Shared>,
    file: Option<File>,
    inode: u64,
    /// Offset of the next byte to read (>= line boundary + partial bytes).
    read_offset: u64,
    /// Offset of the last *emitted* line boundary (what cursors carry).
    line_offset: u64,
    partial: Vec<u8>,
    skip: u64,
    resume: Option<TailCursor>,
    /// Lines decoded but refused by a full queue (Block policy): the tail
    /// simply stops reading until these drain.
    pending: VecDeque<(ByteLine, TailCursor)>,
}

impl FileTailHandler {
    pub(super) fn new(spec: TailSpec, index: usize, shared: Arc<Shared>) -> Self {
        FileTailHandler {
            path: spec.path,
            source: SourceId(TAIL_SOURCE_BASE + index as u16),
            index,
            shared,
            file: None,
            inode: 0,
            read_offset: 0,
            line_offset: 0,
            partial: Vec::new(),
            skip: spec.skip_lines,
            resume: spec.resume,
            pending: VecDeque::new(),
        }
    }

    fn flush_pending(&mut self) -> bool {
        while let Some((line, cursor)) = self.pending.pop_front() {
            let ev = SourceEvent {
                source: self.source,
                line,
                cursor: Some((self.index, cursor)),
            };
            if let Err(ev) = self.shared.push_or_apply_policy(ev, true) {
                let (_, cursor) = ev.cursor.expect("tail event keeps its cursor");
                self.pending.push_front((ev.line, cursor));
                return false;
            }
        }
        true
    }

    /// Open (or re-open after rotation/truncation) the file if needed.
    fn ensure_open(&mut self) -> bool {
        let meta = match std::fs::metadata(&self.path) {
            Ok(m) => m,
            Err(_) => {
                // File missing (rotation gap): finish the old handle if any.
                return self.file.is_some();
            }
        };
        let disk_inode = inode_of(&meta);
        match &self.file {
            Some(_) if disk_inode == self.inode && meta.len() >= self.read_offset => true,
            Some(_) if disk_inode == self.inode => {
                // Truncated in place: restart from the top.
                self.reopen(disk_inode, 0)
            }
            Some(_) => {
                // Rotated: the poll loop reads the old handle to EOF first
                // (self.file still points at the old inode); only swap once
                // the old file is fully consumed.
                true
            }
            None => {
                let start = match self.resume.take() {
                    Some(c) if c.inode == disk_inode && c.offset <= meta.len() => c.offset,
                    Some(_) => {
                        // Rotated (or truncated) while we were down; the
                        // journal already holds what we read of the old
                        // file. Start over on the new one.
                        self.skip = 0;
                        0
                    }
                    None => 0,
                };
                self.reopen(disk_inode, start)
            }
        }
    }

    fn reopen(&mut self, inode: u64, offset: u64) -> bool {
        match File::open(&self.path) {
            Ok(mut f) => {
                if f.seek(SeekFrom::Start(offset)).is_err() {
                    return false;
                }
                self.file = Some(f);
                self.inode = inode;
                self.read_offset = offset;
                self.line_offset = offset;
                self.partial.clear();
                true
            }
            Err(_) => false,
        }
    }

    /// After the current handle hits EOF: swap to a rotated replacement if
    /// one is sitting at `path` with a different inode.
    fn maybe_rotate(&mut self) {
        if let Ok(meta) = std::fs::metadata(&self.path) {
            let disk_inode = inode_of(&meta);
            if disk_inode != self.inode {
                // The partial tail of the rotated-away file never got its
                // newline; it is dropped, mirroring the torn-frame rule.
                if !self.partial.is_empty() {
                    self.partial.clear();
                }
                self.file = None;
                self.skip = 0;
                self.reopen(disk_inode, 0);
            }
        }
    }

    /// Read up to the quantum, emit complete lines. Returns false when the
    /// queue paused us.
    fn poll_file(&mut self) -> bool {
        if !self.ensure_open() {
            return true;
        }
        if self.file.is_none() {
            return true;
        }
        let mut budget = TAIL_QUANTUM;
        let mut chunk = [0u8; 16 * 1024];
        let mut hit_eof = false;
        while budget > 0 {
            let want = budget.min(chunk.len());
            let Some(file) = self.file.as_mut() else {
                break;
            };
            match file.read(&mut chunk[..want]) {
                Ok(0) => {
                    hit_eof = true;
                    break;
                }
                Ok(n) => {
                    budget -= n;
                    self.read_offset += n as u64;
                    self.partial.extend_from_slice(&chunk[..n]);
                    if !self.emit_lines() {
                        return false;
                    }
                }
                Err(_) => break,
            }
        }
        if hit_eof {
            self.maybe_rotate();
        }
        true
    }

    /// Split `partial` at newlines and enqueue the complete lines; the
    /// remainder stays buffered (a half-written line is not ingested until
    /// its newline lands). Returns false when paused by a full queue.
    fn emit_lines(&mut self) -> bool {
        let mut consumed = 0usize;
        let mut paused = false;
        while let Some(rel) = self.partial[consumed..].iter().position(|&b| b == b'\n') {
            let nl = consumed + rel;
            let start = consumed;
            consumed = nl + 1;
            self.line_offset += (consumed - start) as u64;
            if self.skip > 0 {
                self.skip -= 1;
                continue;
            }
            let mut end = nl;
            if end > start && self.partial[end - 1] == b'\r' {
                end -= 1;
            }
            if end == start {
                continue; // empty line
            }
            if end - start > self.shared.max_frame_bytes {
                crate::metrics::PipelineMetrics::add(&self.shared.metrics.sources_frame_errors, 1);
                continue;
            }
            let line = ByteLine::from_string(
                String::from_utf8_lossy(&self.partial[start..end]).into_owned(),
            );
            let cursor = TailCursor {
                inode: self.inode,
                offset: self.line_offset,
                last_seq: 0,
            };
            if self.pending.is_empty() {
                let ev = SourceEvent {
                    source: self.source,
                    line,
                    cursor: Some((self.index, cursor)),
                };
                if let Err(ev) = self.shared.push_or_apply_policy(ev, true) {
                    let (_, cursor) = ev.cursor.expect("tail event keeps its cursor");
                    self.pending.push_back((ev.line, cursor));
                    paused = true;
                    break;
                }
            } else {
                self.pending.push_back((line, cursor));
            }
        }
        self.partial.drain(..consumed);
        !paused
    }
}

impl Handler for FileTailHandler {
    fn ready(&mut self, _r: bool, _w: bool, _ctx: &mut LoopCtx<'_>) -> Next {
        Next::Keep // timer-only: no fd
    }

    fn tick(&mut self, _now: Instant, _ctx: &mut LoopCtx<'_>) -> Next {
        if !self.flush_pending() {
            return Next::Keep; // still backpressured; don't read more
        }
        self.poll_file();
        Next::Keep
    }

    fn interest(&self) -> Interest {
        Interest::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::super::{SourceQueue, SourcesConfig, SourcesServer};
    use super::*;
    use crate::observe::MetricsRegistry;
    use std::io::Write;
    use std::time::{Duration, Instant};

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "monilog-tail-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn spawn_tail(spec: TailSpec, queue_capacity: usize) -> (SourcesServer, SourceQueue) {
        let cfg = SourcesConfig {
            tails: vec![spec],
            queue_capacity,
            assumed_year: 2026,
            ..SourcesConfig::default()
        };
        SourcesServer::spawn(cfg, MetricsRegistry::shared_with_shards(1), None, None).unwrap()
    }

    fn drain_for(queue: &SourceQueue, want: usize, secs: u64) -> Vec<SourceEvent> {
        let deadline = Instant::now() + Duration::from_secs(secs);
        let mut got = Vec::new();
        while got.len() < want && Instant::now() < deadline {
            got.extend(queue.recv_batch(64, Duration::from_millis(20)));
        }
        got
    }

    #[test]
    fn tails_appended_lines_with_cursors() {
        let path = temp_path("basic");
        let mut f = std::fs::File::create(&path).unwrap();
        writeln!(f, "first").unwrap();
        f.flush().unwrap();

        let (_server, queue) = spawn_tail(TailSpec::new(&path), 128);
        let got = drain_for(&queue, 1, 5);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].line, "first");
        let (idx, cursor) = got[0].cursor.unwrap();
        assert_eq!(idx, 0);
        assert_eq!(cursor.offset, 6); // "first\n"
        assert_ne!(cursor.inode, 0);

        // Lines appended while tailing are picked up, partial lines are not.
        writeln!(f, "second").unwrap();
        write!(f, "partial-no-newline").unwrap();
        f.flush().unwrap();
        let got = drain_for(&queue, 1, 5);
        assert_eq!(got.len(), 1, "only the complete line arrives");
        assert_eq!(got[0].line, "second");
        assert_eq!(got[0].cursor.unwrap().1.offset, 13);

        writeln!(f).unwrap(); // newline completes the partial
        f.flush().unwrap();
        let got = drain_for(&queue, 1, 5);
        assert_eq!(got[0].line, "partial-no-newline");

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_from_cursor_skips_consumed_lines() {
        let path = temp_path("resume");
        let mut f = std::fs::File::create(&path).unwrap();
        for i in 0..10 {
            writeln!(f, "line {i}").unwrap();
        }
        f.flush().unwrap();
        let inode = inode_of(&std::fs::metadata(&path).unwrap());

        // Cursor after "line 4" (5 lines * 7 bytes each), with 2 more lines
        // already recovered from the WAL (skip them too).
        let spec = TailSpec {
            path: path.clone(),
            resume: Some(TailCursor {
                inode,
                offset: 35,
                last_seq: 5,
            }),
            skip_lines: 2,
        };
        let (_server, queue) = spawn_tail(spec, 128);
        let got = drain_for(&queue, 3, 5);
        let lines: Vec<&str> = got.iter().map(|e| e.line.as_str()).collect();
        assert_eq!(lines, vec!["line 7", "line 8", "line 9"]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stale_cursor_from_a_rotated_file_restarts_at_zero() {
        let path = temp_path("stale");
        let mut f = std::fs::File::create(&path).unwrap();
        writeln!(f, "fresh contents").unwrap();
        f.flush().unwrap();

        let spec = TailSpec {
            path: path.clone(),
            resume: Some(TailCursor {
                inode: 0xdead_beef,
                offset: 999,
                last_seq: 4,
            }),
            skip_lines: 3,
        };
        let (_server, queue) = spawn_tail(spec, 128);
        let got = drain_for(&queue, 1, 5);
        assert_eq!(got.len(), 1, "stale cursor must fall back to a full read");
        assert_eq!(got[0].line, "fresh contents");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rotation_is_followed_to_the_new_inode() {
        let path = temp_path("rotate");
        let rotated = temp_path("rotate-old");
        let mut f = std::fs::File::create(&path).unwrap();
        writeln!(f, "before rotation").unwrap();
        f.flush().unwrap();

        let (_server, queue) = spawn_tail(TailSpec::new(&path), 128);
        let got = drain_for(&queue, 1, 5);
        assert_eq!(got[0].line, "before rotation");
        let old_inode = got[0].cursor.unwrap().1.inode;

        // logrotate-style: rename away, create fresh at the same path.
        drop(f);
        std::fs::rename(&path, &rotated).unwrap();
        let mut f2 = std::fs::File::create(&path).unwrap();
        writeln!(f2, "after rotation").unwrap();
        f2.flush().unwrap();

        let got = drain_for(&queue, 1, 10);
        assert_eq!(got.len(), 1, "tail must follow the rotation");
        assert_eq!(got[0].line, "after rotation");
        assert_ne!(got[0].cursor.unwrap().1.inode, old_inode);

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&rotated);
    }

    #[test]
    fn truncation_restarts_from_the_top() {
        let path = temp_path("trunc");
        let mut f = std::fs::File::create(&path).unwrap();
        writeln!(f, "long line before truncation").unwrap();
        f.flush().unwrap();

        let (_server, queue) = spawn_tail(TailSpec::new(&path), 128);
        assert_eq!(
            drain_for(&queue, 1, 5)[0].line,
            "long line before truncation"
        );

        drop(f);
        let mut f = std::fs::OpenOptions::new()
            .write(true)
            .truncate(true)
            .open(&path)
            .unwrap();
        writeln!(f, "tiny").unwrap();
        f.flush().unwrap();

        let got = drain_for(&queue, 1, 10);
        assert_eq!(got.len(), 1, "truncation must re-read from offset 0");
        assert_eq!(got[0].line, "tiny");
        let _ = std::fs::remove_file(&path);
    }
}
