//! Checkpointed file tailing: follow a live log file, surviving rotation
//! (inode change) and truncation, and emit an inode+offset cursor with
//! every line so the consumer can persist resume positions through the
//! durable checkpoint manifest.
//!
//! The cursor protocol (mirrors vector's file-source checkpointing, adapted
//! to the WAL): `offset` only ever points at a *line boundary* of the file
//! with inode `inode`, and `last_seq` is the journal seq of the last line
//! emitted at that offset. On restart the consumer seeks to the cursor and
//! skips `journal_high_water - last_seq` lines — the lines that were
//! journaled after the checkpoint was cut — so replay and re-read never
//! double-ingest.
//!
//! Tails are timer-driven handlers on the shared event loop (regular files
//! are always "ready"; readiness APIs are useless for them), polling at the
//! loop tick.
//!
//! A `--tail` argument whose basename contains `*` or `?` is a glob: a
//! [`GlobTailHandler`] rescans the parent directory on a timer and
//! registers a fresh [`FileTailHandler`] for every newly matching file —
//! discovery at runtime, not just at startup. Each discovered file gets a
//! stable slot (hence a stable `SourceId`) from a shared allocator, and
//! the `(slot, path)` pair is recorded in the server's tail registry so
//! the consumer can persist *path-keyed* cursors for files it never saw in
//! its static configuration.

use super::{Shared, SourceEvent, TAIL_SOURCE_BASE};
use crate::net::{Handler, Interest, LoopCtx, Next};
use monilog_model::ByteLine;
use monilog_model::SourceId;
use std::collections::VecDeque;
use std::ffi::OsString;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Bytes read per poll tick, bounding loop stall per tail.
const TAIL_QUANTUM: usize = 256 * 1024;

/// How often a glob tail rescans its directory for new matches.
const GLOB_SCAN_INTERVAL: Duration = Duration::from_millis(200);

/// Tail slots live in the source-id range `[TAIL_SOURCE_BASE,
/// ROUTER_SOURCE_BASE)`; a glob that discovers more files than this stops
/// attaching new ones rather than colliding with router-assigned sources.
pub const MAX_TAIL_SLOTS: usize = (crate::cluster::ROUTER_SOURCE_BASE - TAIL_SOURCE_BASE) as usize;

/// Resume position for one tailed file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TailCursor {
    /// Inode the offset refers to; a mismatch on resume means the file was
    /// rotated and the tail restarts from offset 0 of the new file.
    pub inode: u64,
    /// Byte offset of the next unread line boundary.
    pub offset: u64,
    /// Journal seq of the last line emitted at `offset`.
    pub last_seq: u64,
}

/// One file to tail.
#[derive(Debug, Clone)]
pub struct TailSpec {
    pub path: PathBuf,
    /// Recovered cursor from the checkpoint manifest, if any.
    pub resume: Option<TailCursor>,
    /// Lines journaled past the checkpointed cursor (replayed from the
    /// WAL); the tail skips this many lines after seeking.
    pub skip_lines: u64,
}

impl TailSpec {
    pub fn new(path: impl Into<PathBuf>) -> Self {
        TailSpec {
            path: path.into(),
            resume: None,
            skip_lines: 0,
        }
    }
}

/// A glob tail: `dir/pattern` where the basename carries `*`/`?`
/// wildcards. The directory part is literal.
#[derive(Debug, Clone)]
pub struct TailGlobSpec {
    /// Full pattern as configured (e.g. `/var/log/app-*.log`).
    pub pattern: PathBuf,
    /// Path-keyed resume state recovered from the checkpoint manifest:
    /// files this glob discovered in a previous life keep their slot,
    /// cursor, and WAL skip count.
    pub known: Vec<GlobResume>,
}

impl TailGlobSpec {
    pub fn new(pattern: impl Into<PathBuf>) -> Self {
        TailGlobSpec {
            pattern: pattern.into(),
            known: Vec::new(),
        }
    }
}

/// Recovered state for one file a glob tail discovered before a restart.
#[derive(Debug, Clone)]
pub struct GlobResume {
    /// The tail slot the file held (its `SourceId` is
    /// `TAIL_SOURCE_BASE + slot`); reusing it keeps journal seqs and
    /// dedup state consistent across restarts.
    pub slot: usize,
    pub path: PathBuf,
    pub resume: TailCursor,
    /// Lines journaled past the cursor (replayed from the WAL) that the
    /// re-opened tail must skip.
    pub skip_lines: u64,
}

/// Match `name` against a basename glob `pattern` supporting `*` (any run,
/// including empty) and `?` (any single byte). Iterative with single-star
/// backtracking — linear in practice, never recursive.
pub fn glob_match(pattern: &str, name: &str) -> bool {
    let p = pattern.as_bytes();
    let n = name.as_bytes();
    let (mut pi, mut ni) = (0usize, 0usize);
    let (mut star, mut mark) = (usize::MAX, 0usize);
    while ni < n.len() {
        if pi < p.len() && (p[pi] == b'?' || p[pi] == n[ni]) {
            pi += 1;
            ni += 1;
        } else if pi < p.len() && p[pi] == b'*' {
            star = pi;
            mark = ni;
            pi += 1;
        } else if star != usize::MAX {
            // Backtrack: let the last `*` swallow one more byte.
            pi = star + 1;
            mark += 1;
            ni = mark;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == b'*' {
        pi += 1;
    }
    pi == p.len()
}

/// Timer-driven directory scanner: discovers files matching a glob and
/// registers a [`FileTailHandler`] for each, at startup and at runtime.
pub(super) struct GlobTailHandler {
    dir: PathBuf,
    /// Basename pattern (`*`/`?` wildcards).
    pattern: String,
    shared: Arc<Shared>,
    known: Vec<GlobResume>,
    /// Basenames already attached (or permanently skipped): a file is
    /// discovered at most once; rotation/truncation of an attached file is
    /// the per-file handler's business.
    seen: std::collections::HashSet<OsString>,
    next_scan: Instant,
}

impl GlobTailHandler {
    pub(super) fn new(spec: TailGlobSpec, shared: Arc<Shared>) -> Self {
        let dir = match spec.pattern.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
            _ => PathBuf::from("."),
        };
        let pattern = spec
            .pattern
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("*")
            .to_string();
        GlobTailHandler {
            dir,
            pattern,
            shared,
            known: spec.known,
            seen: std::collections::HashSet::new(),
            next_scan: Instant::now(),
        }
    }

    fn scan(&mut self, ctx: &mut LoopCtx<'_>) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return; // directory missing or unreadable; retry next scan
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name_str) = name.to_str() else {
                continue;
            };
            if !glob_match(&self.pattern, name_str) || self.seen.contains(&name) {
                continue;
            }
            let path = self.dir.join(&name);
            // Follow symlinks; only regular files are tailable.
            if !std::fs::metadata(&path)
                .map(|m| m.is_file())
                .unwrap_or(false)
            {
                continue;
            }
            self.seen.insert(name);
            let (slot, resume, skip_lines) = match self.known.iter().position(|k| k.path == path) {
                Some(i) => {
                    let k = self.known.swap_remove(i);
                    (k.slot, Some(k.resume), k.skip_lines)
                }
                None => (
                    self.shared.next_tail_slot.fetch_add(1, Ordering::SeqCst),
                    None,
                    0,
                ),
            };
            if slot >= MAX_TAIL_SLOTS {
                // Source-id space exhausted: the file stays untailed (and
                // `seen`, so the scan does not spin on it).
                crate::metrics::PipelineMetrics::add(&self.shared.metrics.sources_lines_shed, 1);
                continue;
            }
            if let Ok(mut reg) = self.shared.tail_registry.lock() {
                reg.push((slot, path.clone()));
            }
            ctx.register_timer(Box::new(FileTailHandler::new(
                TailSpec {
                    path,
                    resume,
                    skip_lines,
                },
                slot,
                self.shared.clone(),
            )));
        }
    }
}

impl Handler for GlobTailHandler {
    fn ready(&mut self, _r: bool, _w: bool, _ctx: &mut LoopCtx<'_>) -> Next {
        Next::Keep // timer-only: no fd
    }

    fn tick(&mut self, now: Instant, ctx: &mut LoopCtx<'_>) -> Next {
        if now >= self.next_scan {
            self.next_scan = now + GLOB_SCAN_INTERVAL;
            self.scan(ctx);
        }
        Next::Keep
    }

    fn interest(&self) -> Interest {
        Interest::NONE
    }
}

#[cfg(unix)]
fn inode_of(meta: &std::fs::Metadata) -> u64 {
    use std::os::unix::fs::MetadataExt;
    meta.ino()
}

#[cfg(not(unix))]
fn inode_of(_meta: &std::fs::Metadata) -> u64 {
    0 // no rotation detection without inodes; offsets still work
}

pub(super) struct FileTailHandler {
    path: PathBuf,
    source: SourceId,
    index: usize,
    shared: Arc<Shared>,
    file: Option<File>,
    inode: u64,
    /// Offset of the next byte to read (>= line boundary + partial bytes).
    read_offset: u64,
    /// Offset of the last *emitted* line boundary (what cursors carry).
    line_offset: u64,
    partial: Vec<u8>,
    skip: u64,
    resume: Option<TailCursor>,
    /// Lines decoded but refused by a full queue (Block policy): the tail
    /// simply stops reading until these drain.
    pending: VecDeque<(ByteLine, TailCursor)>,
}

impl FileTailHandler {
    pub(super) fn new(spec: TailSpec, index: usize, shared: Arc<Shared>) -> Self {
        FileTailHandler {
            path: spec.path,
            source: SourceId(TAIL_SOURCE_BASE + index as u16),
            index,
            shared,
            file: None,
            inode: 0,
            read_offset: 0,
            line_offset: 0,
            partial: Vec::new(),
            skip: spec.skip_lines,
            resume: spec.resume,
            pending: VecDeque::new(),
        }
    }

    fn flush_pending(&mut self) -> bool {
        while let Some((line, cursor)) = self.pending.pop_front() {
            let ev = SourceEvent {
                source: self.source,
                line,
                cursor: Some((self.index, cursor)),
                seq: None,
            };
            if let Err(ev) = self.shared.push_or_apply_policy(ev, true) {
                let (_, cursor) = ev.cursor.expect("tail event keeps its cursor");
                self.pending.push_front((ev.line, cursor));
                return false;
            }
        }
        true
    }

    /// Open (or re-open after rotation/truncation) the file if needed.
    fn ensure_open(&mut self) -> bool {
        let meta = match std::fs::metadata(&self.path) {
            Ok(m) => m,
            Err(_) => {
                // File missing (rotation gap): finish the old handle if any.
                return self.file.is_some();
            }
        };
        let disk_inode = inode_of(&meta);
        match &self.file {
            Some(_) if disk_inode == self.inode && meta.len() >= self.read_offset => true,
            Some(_) if disk_inode == self.inode => {
                // Truncated in place: restart from the top.
                self.reopen(disk_inode, 0)
            }
            Some(_) => {
                // Rotated: the poll loop reads the old handle to EOF first
                // (self.file still points at the old inode); only swap once
                // the old file is fully consumed.
                true
            }
            None => {
                let start = match self.resume.take() {
                    Some(c) if c.inode == disk_inode && c.offset <= meta.len() => c.offset,
                    Some(_) => {
                        // Rotated (or truncated) while we were down; the
                        // journal already holds what we read of the old
                        // file. Start over on the new one.
                        self.skip = 0;
                        0
                    }
                    None => 0,
                };
                self.reopen(disk_inode, start)
            }
        }
    }

    fn reopen(&mut self, inode: u64, offset: u64) -> bool {
        match File::open(&self.path) {
            Ok(mut f) => {
                if f.seek(SeekFrom::Start(offset)).is_err() {
                    return false;
                }
                self.file = Some(f);
                self.inode = inode;
                self.read_offset = offset;
                self.line_offset = offset;
                self.partial.clear();
                true
            }
            Err(_) => false,
        }
    }

    /// After the current handle hits EOF: swap to a rotated replacement if
    /// one is sitting at `path` with a different inode.
    fn maybe_rotate(&mut self) {
        if let Ok(meta) = std::fs::metadata(&self.path) {
            let disk_inode = inode_of(&meta);
            if disk_inode != self.inode {
                // The partial tail of the rotated-away file never got its
                // newline; it is dropped, mirroring the torn-frame rule.
                if !self.partial.is_empty() {
                    self.partial.clear();
                }
                self.file = None;
                self.skip = 0;
                self.reopen(disk_inode, 0);
            }
        }
    }

    /// Read up to the quantum, emit complete lines. Returns false when the
    /// queue paused us.
    fn poll_file(&mut self) -> bool {
        if !self.ensure_open() {
            return true;
        }
        if self.file.is_none() {
            return true;
        }
        let mut budget = TAIL_QUANTUM;
        let mut chunk = [0u8; 16 * 1024];
        let mut hit_eof = false;
        while budget > 0 {
            let want = budget.min(chunk.len());
            let Some(file) = self.file.as_mut() else {
                break;
            };
            match file.read(&mut chunk[..want]) {
                Ok(0) => {
                    hit_eof = true;
                    break;
                }
                Ok(n) => {
                    budget -= n;
                    self.read_offset += n as u64;
                    self.partial.extend_from_slice(&chunk[..n]);
                    if !self.emit_lines() {
                        return false;
                    }
                }
                Err(_) => break,
            }
        }
        if hit_eof {
            self.maybe_rotate();
        }
        true
    }

    /// Split `partial` at newlines and enqueue the complete lines; the
    /// remainder stays buffered (a half-written line is not ingested until
    /// its newline lands). Returns false when paused by a full queue.
    fn emit_lines(&mut self) -> bool {
        let mut consumed = 0usize;
        let mut paused = false;
        while let Some(rel) = self.partial[consumed..].iter().position(|&b| b == b'\n') {
            let nl = consumed + rel;
            let start = consumed;
            consumed = nl + 1;
            self.line_offset += (consumed - start) as u64;
            if self.skip > 0 {
                self.skip -= 1;
                continue;
            }
            let mut end = nl;
            if end > start && self.partial[end - 1] == b'\r' {
                end -= 1;
            }
            if end == start {
                continue; // empty line
            }
            if end - start > self.shared.max_frame_bytes {
                crate::metrics::PipelineMetrics::add(&self.shared.metrics.sources_frame_errors, 1);
                continue;
            }
            let line = ByteLine::from_string(
                String::from_utf8_lossy(&self.partial[start..end]).into_owned(),
            );
            let cursor = TailCursor {
                inode: self.inode,
                offset: self.line_offset,
                last_seq: 0,
            };
            if self.pending.is_empty() {
                let ev = SourceEvent {
                    source: self.source,
                    line,
                    cursor: Some((self.index, cursor)),
                    seq: None,
                };
                if let Err(ev) = self.shared.push_or_apply_policy(ev, true) {
                    let (_, cursor) = ev.cursor.expect("tail event keeps its cursor");
                    self.pending.push_back((ev.line, cursor));
                    paused = true;
                    break;
                }
            } else {
                self.pending.push_back((line, cursor));
            }
        }
        self.partial.drain(..consumed);
        !paused
    }
}

impl Handler for FileTailHandler {
    fn ready(&mut self, _r: bool, _w: bool, _ctx: &mut LoopCtx<'_>) -> Next {
        Next::Keep // timer-only: no fd
    }

    fn tick(&mut self, _now: Instant, _ctx: &mut LoopCtx<'_>) -> Next {
        if !self.flush_pending() {
            return Next::Keep; // still backpressured; don't read more
        }
        self.poll_file();
        Next::Keep
    }

    fn interest(&self) -> Interest {
        Interest::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::super::{SourceQueue, SourcesConfig, SourcesServer};
    use super::*;
    use crate::observe::MetricsRegistry;
    use std::io::Write;
    use std::time::{Duration, Instant};

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "monilog-tail-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn spawn_tail(spec: TailSpec, queue_capacity: usize) -> (SourcesServer, SourceQueue) {
        let cfg = SourcesConfig {
            tails: vec![spec],
            queue_capacity,
            assumed_year: 2026,
            ..SourcesConfig::default()
        };
        SourcesServer::spawn(cfg, MetricsRegistry::shared_with_shards(1), None, None).unwrap()
    }

    fn drain_for(queue: &SourceQueue, want: usize, secs: u64) -> Vec<SourceEvent> {
        let deadline = Instant::now() + Duration::from_secs(secs);
        let mut got = Vec::new();
        while got.len() < want && Instant::now() < deadline {
            got.extend(queue.recv_batch(64, Duration::from_millis(20)));
        }
        got
    }

    #[test]
    fn tails_appended_lines_with_cursors() {
        let path = temp_path("basic");
        let mut f = std::fs::File::create(&path).unwrap();
        writeln!(f, "first").unwrap();
        f.flush().unwrap();

        let (_server, queue) = spawn_tail(TailSpec::new(&path), 128);
        let got = drain_for(&queue, 1, 5);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].line, "first");
        let (idx, cursor) = got[0].cursor.unwrap();
        assert_eq!(idx, 0);
        assert_eq!(cursor.offset, 6); // "first\n"
        assert_ne!(cursor.inode, 0);

        // Lines appended while tailing are picked up, partial lines are not.
        writeln!(f, "second").unwrap();
        write!(f, "partial-no-newline").unwrap();
        f.flush().unwrap();
        let got = drain_for(&queue, 1, 5);
        assert_eq!(got.len(), 1, "only the complete line arrives");
        assert_eq!(got[0].line, "second");
        assert_eq!(got[0].cursor.unwrap().1.offset, 13);

        writeln!(f).unwrap(); // newline completes the partial
        f.flush().unwrap();
        let got = drain_for(&queue, 1, 5);
        assert_eq!(got[0].line, "partial-no-newline");

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_from_cursor_skips_consumed_lines() {
        let path = temp_path("resume");
        let mut f = std::fs::File::create(&path).unwrap();
        for i in 0..10 {
            writeln!(f, "line {i}").unwrap();
        }
        f.flush().unwrap();
        let inode = inode_of(&std::fs::metadata(&path).unwrap());

        // Cursor after "line 4" (5 lines * 7 bytes each), with 2 more lines
        // already recovered from the WAL (skip them too).
        let spec = TailSpec {
            path: path.clone(),
            resume: Some(TailCursor {
                inode,
                offset: 35,
                last_seq: 5,
            }),
            skip_lines: 2,
        };
        let (_server, queue) = spawn_tail(spec, 128);
        let got = drain_for(&queue, 3, 5);
        let lines: Vec<&str> = got.iter().map(|e| e.line.as_str()).collect();
        assert_eq!(lines, vec!["line 7", "line 8", "line 9"]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stale_cursor_from_a_rotated_file_restarts_at_zero() {
        let path = temp_path("stale");
        let mut f = std::fs::File::create(&path).unwrap();
        writeln!(f, "fresh contents").unwrap();
        f.flush().unwrap();

        let spec = TailSpec {
            path: path.clone(),
            resume: Some(TailCursor {
                inode: 0xdead_beef,
                offset: 999,
                last_seq: 4,
            }),
            skip_lines: 3,
        };
        let (_server, queue) = spawn_tail(spec, 128);
        let got = drain_for(&queue, 1, 5);
        assert_eq!(got.len(), 1, "stale cursor must fall back to a full read");
        assert_eq!(got[0].line, "fresh contents");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rotation_is_followed_to_the_new_inode() {
        let path = temp_path("rotate");
        let rotated = temp_path("rotate-old");
        let mut f = std::fs::File::create(&path).unwrap();
        writeln!(f, "before rotation").unwrap();
        f.flush().unwrap();

        let (_server, queue) = spawn_tail(TailSpec::new(&path), 128);
        let got = drain_for(&queue, 1, 5);
        assert_eq!(got[0].line, "before rotation");
        let old_inode = got[0].cursor.unwrap().1.inode;

        // logrotate-style: rename away, create fresh at the same path.
        drop(f);
        std::fs::rename(&path, &rotated).unwrap();
        let mut f2 = std::fs::File::create(&path).unwrap();
        writeln!(f2, "after rotation").unwrap();
        f2.flush().unwrap();

        let got = drain_for(&queue, 1, 10);
        assert_eq!(got.len(), 1, "tail must follow the rotation");
        assert_eq!(got[0].line, "after rotation");
        assert_ne!(got[0].cursor.unwrap().1.inode, old_inode);

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&rotated);
    }

    #[test]
    fn glob_match_covers_star_and_question() {
        assert!(glob_match("*", "anything.log"));
        assert!(glob_match("app-*.log", "app-1.log"));
        assert!(glob_match("app-*.log", "app-.log"));
        assert!(glob_match("app-*.log", "app-very-long-suffix.log"));
        assert!(!glob_match("app-*.log", "app-1.txt"));
        assert!(!glob_match("app-*.log", "web-1.log"));
        assert!(glob_match("?.log", "a.log"));
        assert!(!glob_match("?.log", "ab.log"));
        assert!(glob_match("a*b*c", "a-x-b-y-c"));
        assert!(!glob_match("a*b*c", "a-x-b-y"));
        assert!(glob_match("**", "x"));
        assert!(glob_match("*", ""));
        assert!(!glob_match("?", ""));
        // `*` must backtrack past a premature literal match.
        assert!(glob_match("*.tar.gz", "backup.tar.tar.gz"));
    }

    #[test]
    fn glob_discovers_files_at_runtime_with_distinct_slots() {
        let dir = std::env::temp_dir().join(format!(
            "monilog-glob-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("app-a.log");
        let mut fa = std::fs::File::create(&a).unwrap();
        writeln!(fa, "from a").unwrap();
        fa.flush().unwrap();
        // A non-matching neighbour must be ignored.
        std::fs::write(dir.join("other.txt"), b"nope\n").unwrap();

        let cfg = SourcesConfig {
            tail_globs: vec![TailGlobSpec::new(dir.join("app-*.log"))],
            queue_capacity: 128,
            assumed_year: 2026,
            ..SourcesConfig::default()
        };
        let (server, queue) =
            SourcesServer::spawn(cfg, MetricsRegistry::shared_with_shards(1), None, None).unwrap();

        let got = drain_for(&queue, 1, 5);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].line, "from a");
        let (slot_a, _) = got[0].cursor.unwrap();

        // A file created while the server runs is discovered and tailed.
        let b = dir.join("app-b.log");
        let mut fb = std::fs::File::create(&b).unwrap();
        writeln!(fb, "from b").unwrap();
        fb.flush().unwrap();
        let got = drain_for(&queue, 1, 10);
        assert_eq!(got.len(), 1, "runtime-created file must be discovered");
        assert_eq!(got[0].line, "from b");
        let (slot_b, _) = got[0].cursor.unwrap();
        assert_ne!(slot_a, slot_b, "each discovered file gets its own slot");

        // The registry exposes both discovered paths, keyed by slot.
        let paths = server.tail_paths();
        assert_eq!(paths.len(), 2);
        assert!(paths.iter().any(|(s, p)| *s == slot_a && *p == a));
        assert!(paths.iter().any(|(s, p)| *s == slot_b && *p == b));

        drop(server);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn glob_resume_reuses_the_recovered_slot_and_cursor() {
        let dir = std::env::temp_dir().join(format!(
            "monilog-glob-resume-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("svc-0.log");
        let mut f = std::fs::File::create(&path).unwrap();
        for i in 0..6 {
            writeln!(f, "line {i}").unwrap();
        }
        f.flush().unwrap();
        let inode = inode_of(&std::fs::metadata(&path).unwrap());

        // A previous life tailed this file at slot 5 and checkpointed a
        // cursor after "line 2" (3 lines * 7 bytes), with one more line in
        // the WAL past the cursor.
        let cfg = SourcesConfig {
            tail_globs: vec![TailGlobSpec {
                pattern: dir.join("svc-*.log"),
                known: vec![GlobResume {
                    slot: 5,
                    path: path.clone(),
                    resume: TailCursor {
                        inode,
                        offset: 21,
                        last_seq: 3,
                    },
                    skip_lines: 1,
                }],
            }],
            queue_capacity: 128,
            assumed_year: 2026,
            ..SourcesConfig::default()
        };
        let (_server, queue) =
            SourcesServer::spawn(cfg, MetricsRegistry::shared_with_shards(1), None, None).unwrap();
        let got = drain_for(&queue, 2, 5);
        let lines: Vec<&str> = got.iter().map(|e| e.line.as_str()).collect();
        assert_eq!(lines, vec!["line 4", "line 5"]);
        assert_eq!(got[0].cursor.unwrap().0, 5, "recovered slot is reused");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_restarts_from_the_top() {
        let path = temp_path("trunc");
        let mut f = std::fs::File::create(&path).unwrap();
        writeln!(f, "long line before truncation").unwrap();
        f.flush().unwrap();

        let (_server, queue) = spawn_tail(TailSpec::new(&path), 128);
        assert_eq!(
            drain_for(&queue, 1, 5)[0].line,
            "long line before truncation"
        );

        drop(f);
        let mut f = std::fs::OpenOptions::new()
            .write(true)
            .truncate(true)
            .open(&path)
            .unwrap();
        writeln!(f, "tiny").unwrap();
        f.flush().unwrap();

        let got = drain_for(&queue, 1, 10);
        assert_eq!(got.len(), 1, "truncation must re-read from offset 0");
        assert_eq!(got[0].line, "tiny");
        let _ = std::fs::remove_file(&path);
    }
}
