//! Supervised sharded parsing: [`crate::service::ShardedParseService`]
//! hardened for faults.
//!
//! The plain service assumes workers never fail: one panicking parse takes
//! a shard down, its queue backs up, and backpressure freezes the whole
//! pipeline. [`SupervisedParseService`] keeps the same topology — router,
//! per-shard Drain workers, bounded channels — and layers four defenses on
//! top:
//!
//! 1. **Per-line containment.** Each parse attempt runs under
//!    `catch_unwind`. A panicking line is retried with exponential backoff
//!    and deterministic jitter ([`RetryPolicy`]); when the budget is
//!    exhausted the line is *quarantined* to a bounded dead-letter queue
//!    with its failure context, and the worker moves on.
//! 2. **Worker supervision.** Panics that escape line containment (see
//!    [`crate::chaos::WorkerKill`]) crash the worker thread. Every worker
//!    beats a per-shard heartbeat even when idle; a supervisor thread
//!    detects dead shards and respawns them *warm-started* from the
//!    shard's last template snapshot, so the replacement assigns the same
//!    template ids the original would have ([`Drain::warm_start`]). At
//!    most the in-flight line is lost — and it is not silently lost: it
//!    lands in the dead-letter queue tagged
//!    [`FailureReason::WorkerCrash`].
//! 3. **Degradation over crash-looping.** A shard that crashes
//!    [`SupervisorConfig::max_consecutive_crashes`] times without an
//!    intervening successful parse is degraded: its worker is replaced by
//!    a passthrough that attributes every line to the reserved
//!    [`CATCH_ALL_TEMPLATE_ID`]. Downstream volume detectors keep seeing
//!    the traffic; template-level fidelity is sacrificed for liveness.
//! 4. **Overload policies.** `submit()` behaviour under saturation is
//!    selectable ([`OverloadPolicy`]): `Block` preserves the historical
//!    backpressure contract (optionally bounded by a submit deadline),
//!    `ShedToCatchAll` drops to the catch-all counter, `DeadLetter`
//!    diverts to the quarantine queue for later replay.
//!
//! Stalled-but-alive shards (heartbeat older than
//! [`SupervisorConfig::heartbeat_timeout`]) are *reported* via
//! [`SupervisedParseService::shard_status`] but not killed: Rust threads
//! cannot be safely terminated from outside, and a slow consumer makes a
//! healthy worker look stalled — see DESIGN.md for the rationale.
//!
//! Template snapshots are re-encoded whenever a shard's store grows. Log
//! template counts plateau quickly (that is the premise of template
//! mining), so snapshot traffic decays to zero on a warmed-up stream.

use crate::chaos::{FaultContext, FaultInjector, WorkerKill};
use crate::config::{ConfigError, OverloadPolicy, RetryPolicy};
use crate::durable::{DeadLetterLog, DurabilityError};
use crate::metrics::PipelineMetrics;
use crate::observe::{MetricsRegistry, ShardGauges, Stage};
use crate::service::{ParsedItem, SHARD_ID_STRIDE};
use crate::trace::{SpanStage, Tracer};
use crossbeam::channel::{
    bounded, Receiver, RecvTimeoutError, SendTimeoutError, Sender, TrySendError,
};
use monilog_model::{ByteLine, TemplateId, TemplateStore, TraceId};
use monilog_parse::{BalancedRouter, Drain, DrainConfig, OnlineParser, ParseOutcome};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Reserved template id for lines whose real template is unknown: shed
/// lines and everything flowing through a degraded shard. Outside every
/// shard's `shard * SHARD_ID_STRIDE + local` namespace.
pub const CATCH_ALL_TEMPLATE_ID: u32 = u32::MAX;

type Item = (u64, ByteLine);

/// A batch admitted into the service, stamped at submit time. One input
/// queue slot per batch: `submit_batch` moves a whole chunk with a single
/// channel transfer.
#[derive(Debug)]
struct InBatch {
    submitted: Instant,
    items: Vec<Item>,
}

/// What flows through a shard queue: the admission stamp (for the
/// [`Stage::ParseQueueWait`] split) plus the item. Shard transport stays
/// per-line on purpose: the crash-containment contract ("at most the
/// in-flight line is lost") is priced per item, and batching the shard
/// queue would widen the blast radius of a worker crash to a whole batch.
/// The batched fast path lives in [`crate::service::ShardedParseService`].
type Queued = (Instant, Item);

/// Everything the supervisor needs to run a fault-tolerant service.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// Number of Drain workers (template-id namespaces).
    pub n_shards: usize,
    /// Bound of every internal queue, in items.
    pub capacity: usize,
    pub drain: DrainConfig,
    /// What `submit()` does when the pipeline is saturated.
    pub overload: OverloadPolicy,
    /// Retry schedule for panicking parse attempts.
    pub retry: RetryPolicy,
    /// How often workers beat their heartbeat (also the supervisor's poll
    /// cadence and the worker's idle-wakeup interval).
    pub heartbeat_interval: Duration,
    /// Heartbeat age past which a live shard is reported as stalled.
    pub heartbeat_timeout: Duration,
    /// Worker crashes without an intervening successful parse before the
    /// shard degrades to catch-all passthrough instead of respawning.
    pub max_consecutive_crashes: u32,
    /// Dead-letter queue bound; oldest entries are evicted beyond it.
    pub dlq_capacity: usize,
    /// Upper bound on how long a `Block`-policy submit may wait.
    pub submit_deadline: Option<Duration>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            n_shards: 4,
            capacity: 256,
            drain: DrainConfig::default(),
            overload: OverloadPolicy::Block,
            retry: RetryPolicy::default(),
            heartbeat_interval: Duration::from_millis(20),
            heartbeat_timeout: Duration::from_millis(500),
            max_consecutive_crashes: 3,
            dlq_capacity: 1024,
            submit_deadline: None,
        }
    }
}

impl SupervisorConfig {
    fn validate(&self) -> Result<(), ConfigError> {
        if self.n_shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        if self.capacity == 0 || self.dlq_capacity == 0 {
            return Err(ConfigError::ZeroCapacity);
        }
        Ok(())
    }
}

/// Why a line ended up in the dead-letter queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureReason {
    /// Every parse attempt (original + retries) panicked.
    Panic,
    /// The pipeline was saturated under the `DeadLetter` overload policy.
    Overload,
    /// The line was in flight when its worker crashed.
    WorkerCrash,
}

/// A quarantined line with enough context to triage or replay it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadLetter {
    pub seq: u64,
    /// The shard that was handling the line; `None` when it never entered
    /// the pipeline (overload diversion happens before routing).
    pub shard: Option<usize>,
    /// Materialized from the arena-backed line at quarantine time: dead
    /// letters outlive arrival buffers (they are persisted and replayed),
    /// so they own their bytes.
    pub line: String,
    pub reason: FailureReason,
    /// Parse attempts made (0 when the line was never attempted).
    pub attempts: u32,
}

/// What happened to a submitted line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Queued for parsing.
    Accepted,
    /// Dropped and accounted to the catch-all template (`ShedToCatchAll`).
    Shed,
    /// Diverted to the dead-letter queue (`DeadLetter` policy).
    DeadLettered,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// `close()` was already called on this handle.
    Closed,
    /// The service shut down (all workers gone).
    Stopped,
    /// `Block` policy with a submit deadline: the deadline elapsed.
    DeadlineExceeded,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Closed => f.write_str("service input already closed"),
            SubmitError::Stopped => f.write_str("service stopped"),
            SubmitError::DeadlineExceeded => f.write_str("submit deadline exceeded"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Point-in-time health of one shard, from [`SupervisedParseService::shard_status`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardHealth {
    pub shard: usize,
    /// False only in the window between a crash and its respawn.
    pub alive: bool,
    /// The shard exhausted its crash budget and now runs the catch-all
    /// passthrough.
    pub degraded: bool,
    /// The worker exited cleanly (service closing down).
    pub finished: bool,
    pub consecutive_crashes: u32,
    /// Age of the last heartbeat.
    pub heartbeat_age: Duration,
    /// Alive but heartbeat older than the configured timeout.
    pub stalled: bool,
}

/// Per-shard state shared between worker, supervisor, and handle.
struct ShardState {
    heartbeat_ms: AtomicU64,
    alive: AtomicBool,
    degraded: AtomicBool,
    finished: AtomicBool,
    consecutive_crashes: AtomicU32,
    /// Encoded `TemplateStore` as of the last template discovery; what a
    /// respawned worker warm-starts from.
    snapshot: Mutex<Option<Vec<u8>>>,
    /// The line currently being parsed; quarantined if the worker crashes.
    in_flight: Mutex<Option<Item>>,
}

impl ShardState {
    fn new() -> Self {
        ShardState {
            heartbeat_ms: AtomicU64::new(0),
            alive: AtomicBool::new(true),
            degraded: AtomicBool::new(false),
            finished: AtomicBool::new(false),
            consecutive_crashes: AtomicU32::new(0),
            snapshot: Mutex::new(None),
            in_flight: Mutex::new(None),
        }
    }

    fn beat(&self, epoch: Instant) {
        self.heartbeat_ms
            .store(epoch.elapsed().as_millis() as u64, Ordering::Relaxed);
    }
}

/// State shared by the handle, the workers, and the supervisor thread.
struct Shared {
    registry: Arc<MetricsRegistry>,
    metrics: Arc<PipelineMetrics>,
    tracer: Arc<Tracer>,
    epoch: Instant,
    shards: Vec<ShardState>,
    dlq: Mutex<VecDeque<DeadLetter>>,
    dlq_capacity: usize,
    dlq_evicted: AtomicU64,
    /// Optional persistent mirror of the DLQ (see
    /// [`SupervisedParseService::attach_dead_letter_log`]). Append-only:
    /// in-memory eviction never rewrites it.
    dlq_file: Mutex<Option<DeadLetterLog>>,
    catch_all_count: AtomicU64,
}

impl Shared {
    fn push_dead_letter(&self, letter: DeadLetter) {
        // Persist before exposing in memory: a crash right after quarantine
        // must not lose the evidence.
        if let Some(log) = &*self.dlq_file.lock() {
            if let Ok(dropped) = log.append(std::slice::from_ref(&letter)) {
                if dropped > 0 {
                    PipelineMetrics::add(&self.metrics.dlq_bytes_dropped, dropped);
                }
            }
        }
        self.push_dead_letter_in_memory(letter);
    }

    fn push_dead_letter_in_memory(&self, letter: DeadLetter) {
        let mut q = self.dlq.lock();
        if q.len() >= self.dlq_capacity {
            q.pop_front();
            self.dlq_evicted.fetch_add(1, Ordering::Relaxed);
        }
        q.push_back(letter);
    }
}

/// Handle to a running supervised parse service. See the module docs for
/// the fault-tolerance contract.
pub struct SupervisedParseService {
    input: Option<Sender<InBatch>>,
    output: Receiver<ParsedItem>,
    router: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    config: SupervisorConfig,
}

impl SupervisedParseService {
    /// Spawn the service with no fault injection (production shape).
    pub fn spawn(config: SupervisorConfig) -> Result<Self, ConfigError> {
        Self::spawn_with_injector(config, None)
    }

    /// Spawn with a chaos injector (see [`crate::chaos::FaultPlan`]): the
    /// callback runs before every parse attempt and raises faults by
    /// panicking.
    pub fn spawn_with_injector(
        config: SupervisorConfig,
        injector: Option<FaultInjector>,
    ) -> Result<Self, ConfigError> {
        Self::spawn_with_tracer(config, injector, None)
    }

    /// Spawn with both a chaos injector and a span tracer. Sampled lines
    /// get queue-wait and parse spans; crash, quarantine and degradation
    /// events are marked in — and dump — the flight recorder.
    pub fn spawn_with_tracer(
        config: SupervisorConfig,
        injector: Option<FaultInjector>,
        tracer: Option<Arc<Tracer>>,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        let n = config.n_shards;
        let (input_tx, input_rx) = bounded::<InBatch>(config.capacity);
        let (output_tx, output_rx) = bounded::<ParsedItem>(config.capacity);

        let registry = MetricsRegistry::shared_with_shards(n);
        let shared = Arc::new(Shared {
            metrics: Arc::clone(registry.counters()),
            registry,
            tracer: tracer.unwrap_or_else(Tracer::disabled),
            epoch: Instant::now(),
            shards: (0..n).map(|_| ShardState::new()).collect(),
            dlq: Mutex::new(VecDeque::new()),
            dlq_capacity: config.dlq_capacity,
            dlq_evicted: AtomicU64::new(0),
            dlq_file: Mutex::new(None),
            catch_all_count: AtomicU64::new(0),
        });
        let stop = Arc::new(AtomicBool::new(false));

        let mut shard_txs = Vec::with_capacity(n);
        let mut shard_rxs = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for shard in 0..n {
            let (tx, rx) = bounded::<Queued>(config.capacity);
            shard_txs.push(tx);
            shard_rxs.push(rx.clone());
            workers.push(spawn_worker(
                shard,
                rx,
                output_tx.clone(),
                Arc::clone(&shared),
                config,
                injector.clone(),
            ));
        }

        let router = std::thread::spawn(move || {
            let mut router = BalancedRouter::new(n);
            while let Ok(InBatch { submitted, items }) = input_rx.recv() {
                for (seq, line) in items {
                    let shard = router.route(&line);
                    if shard_txs[shard].send((submitted, (seq, line))).is_err() {
                        return;
                    }
                }
            }
            // Dropping shard_txs disconnects the shard queues: workers
            // drain what is left and exit.
        });

        let supervisor = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                supervise(
                    workers, shard_rxs, output_tx, shared, stop, config, injector,
                )
            })
        };

        Ok(SupervisedParseService {
            input: Some(input_tx),
            output: output_rx,
            router: Some(router),
            supervisor: Some(supervisor),
            shared,
            stop,
            config,
        })
    }

    /// Submit a line; saturation behaviour follows the configured
    /// [`OverloadPolicy`].
    pub fn submit(
        &self,
        seq: u64,
        line: impl Into<ByteLine>,
    ) -> Result<SubmitOutcome, SubmitError> {
        self.submit_batch(vec![(seq, line.into())])
    }

    /// Submit a chunk of lines as one batch — one channel transfer, one
    /// queue slot. The outcome applies to the whole batch; overload
    /// accounting (shed counters, dead letters) is still per line, so a
    /// rejected batch of `n` lines shows up as `n` shed/quarantined lines,
    /// never a silently collapsed one. An empty batch is a no-op.
    pub fn submit_batch(&self, items: Vec<Item>) -> Result<SubmitOutcome, SubmitError> {
        if items.is_empty() {
            return Ok(SubmitOutcome::Accepted);
        }
        let tx = self.input.as_ref().ok_or(SubmitError::Closed)?;
        let len = items.len() as u64;
        let accepted = |shared: &Shared| {
            PipelineMetrics::add(&shared.metrics.lines_ingested, len);
            PipelineMetrics::incr(&shared.metrics.batches_submitted);
            shared.registry.batch_sizes().record(len);
            Ok(SubmitOutcome::Accepted)
        };
        let batch = InBatch {
            submitted: Instant::now(),
            items,
        };
        match self.config.overload {
            OverloadPolicy::Block => match self.config.submit_deadline {
                None => match tx.send(batch) {
                    Ok(()) => accepted(&self.shared),
                    Err(_) => Err(SubmitError::Stopped),
                },
                Some(deadline) => match tx.send_timeout(batch, deadline) {
                    Ok(()) => accepted(&self.shared),
                    Err(SendTimeoutError::Timeout(_)) => Err(SubmitError::DeadlineExceeded),
                    Err(SendTimeoutError::Disconnected(_)) => Err(SubmitError::Stopped),
                },
            },
            OverloadPolicy::ShedToCatchAll => match tx.try_send(batch) {
                Ok(()) => accepted(&self.shared),
                Err(TrySendError::Full(batch)) => {
                    let n = batch.items.len() as u64;
                    PipelineMetrics::add(&self.shared.metrics.lines_shed, n);
                    self.shared.catch_all_count.fetch_add(n, Ordering::Relaxed);
                    Ok(SubmitOutcome::Shed)
                }
                Err(TrySendError::Disconnected(_)) => Err(SubmitError::Stopped),
            },
            OverloadPolicy::DeadLetter => match tx.try_send(batch) {
                Ok(()) => accepted(&self.shared),
                Err(TrySendError::Full(batch)) => {
                    let n = batch.items.len() as u64;
                    for (seq, line) in batch.items {
                        self.shared.push_dead_letter(DeadLetter {
                            seq,
                            shard: None,
                            line: line.into_string(),
                            reason: FailureReason::Overload,
                            attempts: 0,
                        });
                    }
                    PipelineMetrics::add(&self.shared.metrics.lines_quarantined, n);
                    Ok(SubmitOutcome::DeadLettered)
                }
                Err(TrySendError::Disconnected(_)) => Err(SubmitError::Stopped),
            },
        }
    }

    /// Receive the next parsed item; `None` once the service is closed and
    /// fully drained.
    pub fn recv(&self) -> Option<ParsedItem> {
        self.output.recv().ok()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<ParsedItem> {
        self.output.try_recv().ok()
    }

    /// The service's shared metrics (restarts, quarantines, sheds, …).
    pub fn metrics(&self) -> Arc<PipelineMetrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// The full observability registry: the counters above plus the
    /// [`Stage::Parse`] latency histogram and per-shard gauges (queue
    /// depth, templates, restarts).
    pub fn registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.shared.registry)
    }

    /// Lines attributed to [`CATCH_ALL_TEMPLATE_ID`] (shed + degraded).
    pub fn catch_all_count(&self) -> u64 {
        self.shared.catch_all_count.load(Ordering::Relaxed)
    }

    /// Number of letters currently in the dead-letter queue.
    pub fn dead_letter_count(&self) -> usize {
        self.shared.dlq.lock().len()
    }

    /// Dead letters evicted because the queue hit its bound.
    pub fn dead_letters_evicted(&self) -> u64 {
        self.shared.dlq_evicted.load(Ordering::Relaxed)
    }

    /// Take every quarantined line (oldest first), emptying the queue —
    /// the replay/triage entry point.
    pub fn drain_dead_letters(&self) -> Vec<DeadLetter> {
        self.shared.dlq.lock().drain(..).collect()
    }

    /// Attach a persistent dead-letter log (under `--state-dir`): letters
    /// already on disk from a previous process are reloaded into the
    /// in-memory queue (oldest first, respecting its bound) and every
    /// future quarantine is appended to the file before it becomes visible
    /// in memory. Returns how many letters were reloaded. Call this right
    /// after spawn, before submitting lines.
    pub fn attach_dead_letter_log(&self, log: DeadLetterLog) -> Result<usize, DurabilityError> {
        let prior = log.load()?;
        let reloaded = prior.len();
        for letter in prior {
            self.shared.push_dead_letter_in_memory(letter);
        }
        *self.shared.dlq_file.lock() = Some(log);
        Ok(reloaded)
    }

    /// Point-in-time health of every shard. Stalled shards are reported,
    /// not killed — see the module docs.
    pub fn shard_status(&self) -> Vec<ShardHealth> {
        let now_ms = self.shared.epoch.elapsed().as_millis() as u64;
        self.shared
            .shards
            .iter()
            .enumerate()
            .map(|(shard, s)| {
                let beat = s.heartbeat_ms.load(Ordering::Relaxed);
                let age = Duration::from_millis(now_ms.saturating_sub(beat));
                let alive = s.alive.load(Ordering::SeqCst);
                let finished = s.finished.load(Ordering::SeqCst);
                ShardHealth {
                    shard,
                    alive,
                    degraded: s.degraded.load(Ordering::SeqCst),
                    finished,
                    consecutive_crashes: s.consecutive_crashes.load(Ordering::SeqCst),
                    heartbeat_age: age,
                    stalled: alive && !finished && age > self.config.heartbeat_timeout,
                }
            })
            .collect()
    }

    /// Close the input: workers drain their queues and exit cleanly.
    pub fn close(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.input = None;
    }

    /// Close, drain, and join everything; returns the remaining parsed
    /// items and the final dead-letter queue.
    pub fn shutdown(mut self) -> (Vec<ParsedItem>, Vec<DeadLetter>) {
        self.close();
        let mut rest = Vec::new();
        while let Ok(item) = self.output.recv() {
            rest.push(item);
        }
        if let Some(router) = self.router.take() {
            router.join().expect("router thread panicked");
        }
        if let Some(supervisor) = self.supervisor.take() {
            supervisor.join().expect("supervisor thread panicked");
        }
        let letters = self.drain_dead_letters();
        (rest, letters)
    }
}

impl Drop for SupervisedParseService {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.input = None;
        // Blocking drain until disconnect (see ShardedParseService::drop):
        // the output only disconnects once every worker and the
        // supervisor's spare sender are gone, which is exactly when the
        // joins below cannot deadlock.
        while self.output.recv().is_ok() {}
        if let Some(router) = self.router.take() {
            let _ = router.join();
        }
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
    }
}

fn spawn_worker(
    shard: usize,
    rx: Receiver<Queued>,
    out: Sender<ParsedItem>,
    shared: Arc<Shared>,
    config: SupervisorConfig,
    injector: Option<FaultInjector>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("monilog-shard-{shard}"))
        .spawn(move || run_worker(shard, rx, out, shared, config, injector))
        .expect("spawn worker thread")
}

/// Worker thread body: the crash boundary. A panic escaping the parse loop
/// quarantines the in-flight line and flags the shard dead for respawn.
fn run_worker(
    shard: usize,
    rx: Receiver<Queued>,
    out: Sender<ParsedItem>,
    shared: Arc<Shared>,
    config: SupervisorConfig,
    injector: Option<FaultInjector>,
) {
    let state = &shared.shards[shard];
    state.alive.store(true, Ordering::SeqCst);
    state.beat(shared.epoch);
    let result = catch_unwind(AssertUnwindSafe(|| {
        worker_loop(shard, &rx, &out, &shared, &config, injector.as_deref())
    }));
    match result {
        Ok(()) => state.finished.store(true, Ordering::SeqCst),
        Err(_) => {
            if let Some((seq, line)) = state.in_flight.lock().take() {
                shared
                    .tracer
                    .mark(TraceId(seq + 1), SpanStage::Crash, shard as u16, None);
                shared.push_dead_letter(DeadLetter {
                    seq,
                    shard: Some(shard),
                    line: line.into_string(),
                    reason: FailureReason::WorkerCrash,
                    attempts: 0,
                });
                PipelineMetrics::incr(&shared.metrics.lines_quarantined);
            }
            // Dump before flagging dead: the flight recorder must hit disk
            // before a respawned worker starts overwriting ring slots.
            shared.tracer.dump("crash");
            // Flag last: once false, the supervisor may respawn, and the
            // replacement must see the dead letter already recorded.
            state.alive.store(false, Ordering::SeqCst);
        }
    }
}

fn worker_loop(
    shard: usize,
    rx: &Receiver<Queued>,
    out: &Sender<ParsedItem>,
    shared: &Shared,
    config: &SupervisorConfig,
    injector: Option<&(dyn Fn(&FaultContext<'_>) + Send + Sync)>,
) {
    let state = &shared.shards[shard];
    // Warm-start from the shard's last snapshot so template ids survive
    // respawns. A corrupt snapshot falls back to a cold parser: ids then
    // restart from 0 for this shard, which downstream consumers must treat
    // as template churn — strictly better than refusing to parse at all.
    let mut parser = match state.snapshot.lock().clone() {
        Some(bytes) => match TemplateStore::decode(&bytes) {
            Ok(store) => Drain::warm_start(config.drain, store),
            Err(_) => Drain::new(config.drain),
        },
        None => Drain::new(config.drain),
    };
    let mut known_templates = parser.store().len();
    let (mut seen_hits, mut seen_misses) = parser.cache_stats();

    loop {
        state.beat(shared.epoch);
        match rx.recv_timeout(config.heartbeat_interval) {
            Err(RecvTimeoutError::Timeout) => continue, // idle: keep beating
            Err(RecvTimeoutError::Disconnected) => break,
            Ok((enqueued, (seq, line))) => {
                let trace = shared.tracer.trace_for(seq);
                let wait_ns = enqueued.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                shared
                    .registry
                    .stage(Stage::ParseQueueWait)
                    .record_ns(wait_ns);
                if let Some(t) = trace {
                    shared.tracer.record_since(
                        t,
                        SpanStage::QueueWait,
                        shard as u16,
                        enqueued,
                        None,
                        None,
                    );
                }
                *state.in_flight.lock() = Some((seq, line.clone()));
                let parse_start = Instant::now();
                let parsed = parse_with_retries(&mut parser, seq, &line, config, injector, shared);
                shared.registry.record(Stage::Parse, parse_start);
                let (hits, misses) = parser.cache_stats();
                PipelineMetrics::add(&shared.metrics.cache_hits, hits - seen_hits);
                PipelineMetrics::add(&shared.metrics.cache_misses, misses - seen_misses);
                (seen_hits, seen_misses) = (hits, misses);
                let gauges = shared.registry.shard(shard);
                ShardGauges::set(&gauges.queue_depth, rx.len() as u64);
                match parsed {
                    Ok(mut outcome) => {
                        state.consecutive_crashes.store(0, Ordering::SeqCst);
                        if parser.store().len() > known_templates {
                            known_templates = parser.store().len();
                            *state.snapshot.lock() = Some(parser.store().encode());
                        }
                        ShardGauges::set(&gauges.templates, known_templates as u64);
                        outcome.template =
                            TemplateId(shard as u32 * SHARD_ID_STRIDE + outcome.template.0);
                        PipelineMetrics::incr(&shared.metrics.lines_parsed);
                        if let Some(t) = trace {
                            shared.tracer.record_since(
                                t,
                                SpanStage::Parse,
                                shard as u16,
                                parse_start,
                                Some(outcome.template.0),
                                Some(parser.last_parse_cache_hit()),
                            );
                        }
                        let item = ParsedItem {
                            seq,
                            shard,
                            outcome,
                        };
                        if out.send(item).is_err() {
                            state.in_flight.lock().take();
                            break; // consumer went away: stop quietly
                        }
                        state.in_flight.lock().take();
                    }
                    Err(attempts) => {
                        state.in_flight.lock().take();
                        shared.push_dead_letter(DeadLetter {
                            seq,
                            shard: Some(shard),
                            line: line.into_string(),
                            reason: FailureReason::Panic,
                            attempts,
                        });
                        PipelineMetrics::incr(&shared.metrics.lines_quarantined);
                        // Quarantine is forensic gold: mark it whether or
                        // not the line was sampled, and preserve the ring
                        // contents on disk while they still show the
                        // lead-up.
                        shared.tracer.mark(
                            TraceId(seq + 1),
                            SpanStage::Quarantine,
                            shard as u16,
                            None,
                        );
                        shared.tracer.dump("quarantine");
                    }
                }
            }
        }
    }
}

/// One line through the retry schedule. `Err(attempts)` = every attempt
/// panicked (quarantine). A [`WorkerKill`] payload is re-raised, escaping
/// to the worker boundary.
fn parse_with_retries(
    parser: &mut Drain,
    seq: u64,
    line: &str,
    config: &SupervisorConfig,
    injector: Option<&(dyn Fn(&FaultContext<'_>) + Send + Sync)>,
    shared: &Shared,
) -> Result<ParseOutcome, u32> {
    let mut attempt = 0u32;
    loop {
        let result = catch_unwind(AssertUnwindSafe(|| {
            if let Some(inject) = injector {
                inject(&FaultContext { seq, attempt, line });
            }
            parser.parse(line)
        }));
        match result {
            Ok(outcome) => return Ok(outcome),
            Err(payload) => {
                if payload.is::<WorkerKill>() {
                    resume_unwind(payload);
                }
                if attempt >= config.retry.max_retries {
                    return Err(attempt + 1);
                }
                attempt += 1;
                PipelineMetrics::incr(&shared.metrics.retries_attempted);
                std::thread::sleep(config.retry.backoff(attempt, seq));
            }
        }
    }
}

/// Degraded passthrough: keeps the shard's queue moving by attributing
/// every line to the catch-all template instead of parsing.
fn run_degraded(
    shard: usize,
    rx: Receiver<Queued>,
    out: Sender<ParsedItem>,
    shared: Arc<Shared>,
    heartbeat_interval: Duration,
) {
    let state = &shared.shards[shard];
    state.alive.store(true, Ordering::SeqCst);
    loop {
        state.beat(shared.epoch);
        match rx.recv_timeout(heartbeat_interval) {
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
            Ok((_enqueued, (seq, _line))) => {
                shared.catch_all_count.fetch_add(1, Ordering::Relaxed);
                let outcome = ParseOutcome {
                    template: TemplateId(CATCH_ALL_TEMPLATE_ID),
                    is_new: false,
                    variables: Vec::new(),
                };
                if out
                    .send(ParsedItem {
                        seq,
                        shard,
                        outcome,
                    })
                    .is_err()
                {
                    break;
                }
            }
        }
    }
    state.finished.store(true, Ordering::SeqCst);
}

/// Supervisor thread: polls shard liveness every heartbeat interval,
/// respawning crashed workers (warm) or degrading crash-looping shards.
///
/// Supervision continues *through* shutdown: if a shard is dead when stop
/// is requested, its queue would stay full, wedge the router mid-send, and
/// deadlock the whole teardown. Respawning until every shard finishes
/// keeps the queues draining; workers exit naturally once the router drops
/// the shard senders.
fn supervise(
    workers: Vec<JoinHandle<()>>,
    shard_rxs: Vec<Receiver<Queued>>,
    output_tx: Sender<ParsedItem>,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    config: SupervisorConfig,
    injector: Option<FaultInjector>,
) {
    let mut workers: Vec<Option<JoinHandle<()>>> = workers.into_iter().map(Some).collect();
    loop {
        std::thread::sleep(config.heartbeat_interval);
        let stopping = stop.load(Ordering::SeqCst);
        let mut all_finished = true;
        for shard in 0..config.n_shards {
            let state = &shared.shards[shard];
            if state.finished.load(Ordering::SeqCst) {
                continue;
            }
            all_finished = false;
            if state.alive.load(Ordering::SeqCst) {
                continue;
            }
            // Dead worker: reap it, then respawn or degrade. Mark the
            // shard alive *before* spawning — the replacement thread may
            // not be scheduled before our next poll, and a second respawn
            // would reap a healthy worker.
            if let Some(old) = workers[shard].take() {
                let _ = old.join();
            }
            let crashes = state.consecutive_crashes.fetch_add(1, Ordering::SeqCst) + 1;
            PipelineMetrics::incr(&shared.metrics.worker_restarts);
            shared
                .registry
                .shard(shard)
                .restarts
                .fetch_add(1, Ordering::Relaxed);
            state.alive.store(true, Ordering::SeqCst);
            workers[shard] = Some(if crashes >= config.max_consecutive_crashes {
                state.degraded.store(true, Ordering::SeqCst);
                // TraceId 0 is never produced by sampling: degradation is a
                // shard-level event with no single line to attribute.
                shared
                    .tracer
                    .mark(TraceId(0), SpanStage::Degrade, shard as u16, None);
                shared.tracer.dump("degrade");
                let rx = shard_rxs[shard].clone();
                let out = output_tx.clone();
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("monilog-shard-{shard}-degraded"))
                    .spawn(move || run_degraded(shard, rx, out, shared, config.heartbeat_interval))
                    .expect("spawn degraded worker")
            } else {
                spawn_worker(
                    shard,
                    shard_rxs[shard].clone(),
                    output_tx.clone(),
                    Arc::clone(&shared),
                    config,
                    injector.clone(),
                )
            });
        }
        if stopping && all_finished {
            break;
        }
    }
    // Every shard finished: join the threads, then drop the spare output
    // sender so the consumer's drain sees disconnect.
    for worker in workers.into_iter().flatten() {
        let _ = worker.join();
    }
    drop(output_tx);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::FaultPlan;

    fn test_config(n_shards: usize, capacity: usize) -> SupervisorConfig {
        SupervisorConfig {
            n_shards,
            capacity,
            heartbeat_interval: Duration::from_millis(5),
            retry: RetryPolicy {
                max_retries: 2,
                base_backoff: Duration::from_micros(100),
                max_backoff: Duration::from_millis(1),
            },
            ..SupervisorConfig::default()
        }
    }

    /// Feed `lines` while concurrently consuming; returns received items.
    fn pump(service: &SupervisedParseService, lines: &[String]) -> Vec<ParsedItem> {
        let mut received = Vec::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                for (i, line) in lines.iter().enumerate() {
                    service.submit(i as u64, line.clone()).expect("submit");
                }
            });
            // The feeder eventually submits everything (Block policy), so
            // received-count convergence is guaranteed; quarantined lines
            // never arrive, hence the timeout-based stop.
            loop {
                match service.output.recv_timeout(Duration::from_millis(500)) {
                    Ok(item) => received.push(item),
                    Err(_) => break,
                }
            }
        });
        received
    }

    fn lines(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| format!("op {} on node node{}", ["read", "write"][i % 2], i % 7))
            .collect()
    }

    #[test]
    fn rejects_invalid_config() {
        let bad = SupervisorConfig {
            n_shards: 0,
            ..SupervisorConfig::default()
        };
        assert_eq!(
            SupervisedParseService::spawn(bad).err(),
            Some(ConfigError::ZeroShards)
        );
        let bad = SupervisorConfig {
            capacity: 0,
            ..SupervisorConfig::default()
        };
        assert_eq!(
            SupervisedParseService::spawn(bad).err(),
            Some(ConfigError::ZeroCapacity)
        );
    }

    #[test]
    fn fault_free_round_trip() {
        let service = SupervisedParseService::spawn(test_config(2, 32)).expect("spawn");
        let input = lines(40);
        let received = pump(&service, &input);
        assert_eq!(received.len(), 40);
        let m = service.metrics();
        assert_eq!(PipelineMetrics::get(&m.lines_parsed), 40);
        assert_eq!(PipelineMetrics::get(&m.worker_restarts), 0);
        assert_eq!(PipelineMetrics::get(&m.lines_quarantined), 0);
        let (rest, letters) = service.shutdown();
        assert!(rest.is_empty());
        assert!(letters.is_empty());
    }

    #[test]
    fn poison_lines_are_quarantined_not_fatal() {
        let plan = FaultPlan::new().poison([3, 11]);
        let service =
            SupervisedParseService::spawn_with_injector(test_config(2, 32), Some(plan.injector()))
                .expect("spawn");
        let input = lines(20);
        let received = pump(&service, &input);
        assert_eq!(received.len(), 18, "all but the 2 poison lines parse");
        let m = service.metrics();
        assert_eq!(PipelineMetrics::get(&m.lines_quarantined), 2);
        // max_retries=2 → 2 retry attempts per poison line.
        assert_eq!(PipelineMetrics::get(&m.retries_attempted), 4);
        assert_eq!(PipelineMetrics::get(&m.worker_restarts), 0);
        let (_, letters) = service.shutdown();
        let mut seqs: Vec<u64> = letters.iter().map(|l| l.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, vec![3, 11]);
        assert!(letters
            .iter()
            .all(|l| l.reason == FailureReason::Panic && l.attempts == 3));
    }

    #[test]
    fn transient_faults_are_rescued_by_retry() {
        let plan = FaultPlan::new().transient([2, 5, 9]);
        let service =
            SupervisedParseService::spawn_with_injector(test_config(1, 32), Some(plan.injector()))
                .expect("spawn");
        let input = lines(12);
        let received = pump(&service, &input);
        assert_eq!(received.len(), 12, "transient faults lose nothing");
        let m = service.metrics();
        assert_eq!(PipelineMetrics::get(&m.retries_attempted), 3);
        assert_eq!(PipelineMetrics::get(&m.lines_quarantined), 0);
        let (_, letters) = service.shutdown();
        assert!(letters.is_empty());
    }

    #[test]
    fn worker_crash_respawns_and_loses_only_in_flight_line() {
        // Kill the worker on seq 11 (the only multiple-of-12 boundary in
        // range); single shard so the target is known.
        let plan = FaultPlan::new().crash_every(12);
        let service =
            SupervisedParseService::spawn_with_injector(test_config(1, 32), Some(plan.injector()))
                .expect("spawn");
        let input = lines(20);
        let received = pump(&service, &input);
        assert_eq!(received.len(), 19, "exactly the in-flight line is lost");
        let m = service.metrics();
        assert_eq!(PipelineMetrics::get(&m.worker_restarts), 1);
        assert_eq!(PipelineMetrics::get(&m.lines_quarantined), 1);
        let (_, letters) = service.shutdown();
        assert_eq!(letters.len(), 1);
        assert_eq!(letters[0].seq, 11);
        assert_eq!(letters[0].reason, FailureReason::WorkerCrash);
    }

    #[test]
    fn respawned_worker_keeps_template_ids_stable() {
        // Parse the same line set with and without a mid-stream crash; ids
        // must match exactly thanks to snapshot warm-start.
        let input = lines(30);

        let baseline = SupervisedParseService::spawn(test_config(1, 32)).expect("spawn");
        let mut expect: Vec<(u64, u32)> = pump(&baseline, &input)
            .iter()
            .map(|p| (p.seq, p.outcome.template.0))
            .collect();
        expect.sort_unstable();
        drop(baseline);

        let plan = FaultPlan::new().crash_every(15); // kills at seq 14, 29
        let service =
            SupervisedParseService::spawn_with_injector(test_config(1, 32), Some(plan.injector()))
                .expect("spawn");
        let mut got: Vec<(u64, u32)> = pump(&service, &input)
            .iter()
            .map(|p| (p.seq, p.outcome.template.0))
            .collect();
        got.sort_unstable();
        let m = service.metrics();
        assert_eq!(PipelineMetrics::get(&m.worker_restarts), 2);
        drop(service);

        let lost: Vec<u64> = vec![14, 29];
        let expect_minus_lost: Vec<(u64, u32)> = expect
            .into_iter()
            .filter(|(s, _)| !lost.contains(s))
            .collect();
        assert_eq!(got, expect_minus_lost, "ids survive respawn bit-for-bit");
    }

    #[test]
    fn crash_loop_degrades_to_catch_all() {
        // Every line kills the worker: after max_consecutive_crashes the
        // shard must degrade and flow lines through as catch-all.
        let plan = FaultPlan::new().crash_every(1);
        let mut config = test_config(1, 8);
        config.max_consecutive_crashes = 2;
        let service = SupervisedParseService::spawn_with_injector(config, Some(plan.injector()))
            .expect("spawn");
        let input = lines(10);
        let received = pump(&service, &input);
        assert!(
            received
                .iter()
                .all(|p| p.outcome.template.0 == CATCH_ALL_TEMPLATE_ID),
            "post-degradation output is catch-all"
        );
        assert!(!received.is_empty(), "degraded shard keeps flowing");
        let status = service.shard_status();
        assert!(status[0].degraded);
        let m = service.metrics();
        assert_eq!(
            PipelineMetrics::get(&m.worker_restarts),
            2,
            "restarts capped by degradation"
        );
        assert!(service.catch_all_count() >= received.len() as u64);
        drop(service);
    }

    #[test]
    fn shed_policy_drops_to_catch_all_when_saturated() {
        let mut config = test_config(1, 1);
        config.overload = OverloadPolicy::ShedToCatchAll;
        let service = SupervisedParseService::spawn(config).expect("spawn");
        // No consumer: the capacity-1 pipeline fills almost immediately.
        let mut shed = 0;
        for i in 0..200 {
            match service
                .submit(i, format!("line {i} payload"))
                .expect("never errors")
            {
                SubmitOutcome::Shed => shed += 1,
                SubmitOutcome::Accepted => {}
                SubmitOutcome::DeadLettered => unreachable!("wrong policy"),
            }
        }
        assert!(shed > 0, "saturation must shed");
        let m = service.metrics();
        assert_eq!(PipelineMetrics::get(&m.lines_shed), shed);
        assert_eq!(service.catch_all_count(), shed);
        drop(service);
    }

    #[test]
    fn dead_letter_policy_diverts_when_saturated() {
        let mut config = test_config(1, 1);
        config.overload = OverloadPolicy::DeadLetter;
        config.dlq_capacity = 4;
        let service = SupervisedParseService::spawn(config).expect("spawn");
        let mut diverted = 0;
        for i in 0..200 {
            if service
                .submit(i, format!("line {i} payload"))
                .expect("never errors")
                == SubmitOutcome::DeadLettered
            {
                diverted += 1;
            }
        }
        assert!(diverted > 4, "saturation must divert");
        assert_eq!(service.dead_letter_count(), 4, "DLQ bounded at capacity");
        assert_eq!(
            service.dead_letters_evicted(),
            diverted - 4,
            "eviction accounted"
        );
        let letters = service.drain_dead_letters();
        assert!(letters
            .iter()
            .all(|l| l.reason == FailureReason::Overload && l.shard.is_none()));
        drop(service);
    }

    #[test]
    fn dead_letters_persist_across_service_restarts() {
        let dir = std::env::temp_dir().join(format!("monilog-sup-dlq-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dlq_path = dir.join("dead_letters.jsonl");
        let mut config = test_config(1, 1);
        config.overload = OverloadPolicy::DeadLetter;
        config.dlq_capacity = 1024;

        // First life: saturate so lines are quarantined, then crash
        // (drop without draining the DLQ).
        let service = SupervisedParseService::spawn(config).expect("spawn");
        let reloaded = service
            .attach_dead_letter_log(DeadLetterLog::open(&dlq_path, 1 << 20).unwrap())
            .unwrap();
        assert_eq!(reloaded, 0, "fresh state dir");
        let mut diverted = 0;
        for i in 0..200 {
            if service
                .submit(i, format!("line {i} payload"))
                .expect("never errors")
                == SubmitOutcome::DeadLettered
            {
                diverted += 1;
            }
        }
        assert!(diverted > 0, "saturation must divert");
        drop(service);

        // Second life: the quarantined lines come back from disk.
        let service = SupervisedParseService::spawn(config).expect("respawn");
        let reloaded = service
            .attach_dead_letter_log(DeadLetterLog::open(&dlq_path, 1 << 20).unwrap())
            .unwrap();
        assert_eq!(reloaded, diverted as usize, "every letter reloaded");
        let letters = service.drain_dead_letters();
        assert_eq!(letters.len(), diverted as usize);
        assert!(letters
            .iter()
            .all(|l| l.reason == FailureReason::Overload && l.line.contains("payload")));
        drop(service);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn block_policy_deadline_reports_timeout() {
        let mut config = test_config(1, 1);
        config.submit_deadline = Some(Duration::from_millis(10));
        let service = SupervisedParseService::spawn(config).expect("spawn");
        let mut deadline_hit = false;
        for i in 0..50 {
            match service.submit(i, format!("line {i} payload")) {
                Ok(_) => {}
                Err(SubmitError::DeadlineExceeded) => {
                    deadline_hit = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(deadline_hit, "full pipeline with deadline must time out");
        drop(service);
    }

    #[test]
    fn shard_status_reports_health() {
        let service = SupervisedParseService::spawn(test_config(3, 8)).expect("spawn");
        let status = service.shard_status();
        assert_eq!(status.len(), 3);
        assert!(status
            .iter()
            .all(|s| s.alive && !s.degraded && s.consecutive_crashes == 0));
        let (_, letters) = service.shutdown();
        assert!(letters.is_empty());
    }

    #[test]
    fn registry_records_parse_latency_and_restart_gauges() {
        let plan = FaultPlan::new().crash_every(12); // kills at seq 11
        let service =
            SupervisedParseService::spawn_with_injector(test_config(1, 32), Some(plan.injector()))
                .expect("spawn");
        let input = lines(20);
        let received = pump(&service, &input);
        assert_eq!(received.len(), 19);
        let snap = service.registry().snapshot();
        // One parse-latency sample per line that reached a worker: 19
        // successes + 1 crash-boundary line whose timer never completes.
        assert_eq!(snap.stage("parse_exec").expect("parse stage").count, 19);
        // Queue wait is recorded before the parse attempt, so the
        // crash-boundary line counts too.
        assert_eq!(
            snap.stage("parse_queue_wait").expect("queue wait").count,
            20
        );
        assert_eq!(snap.shards.len(), 1);
        assert_eq!(snap.shards[0].restarts, 1, "restart gauge tracks respawn");
        assert!(snap.shards[0].templates > 0, "template gauge populated");
        assert_eq!(
            snap.counter("worker_restarts"),
            Some(1),
            "registry counters are the service counters"
        );
        drop(service);
    }

    #[test]
    fn batched_submit_round_trips_and_accounts_batches() {
        let service = SupervisedParseService::spawn(test_config(2, 32)).expect("spawn");
        let input = lines(40);
        let mut received = Vec::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                for (b, chunk) in input.chunks(9).enumerate() {
                    let items: Vec<Item> = chunk
                        .iter()
                        .enumerate()
                        .map(|(i, l)| ((b * 9 + i) as u64, l.clone().into()))
                        .collect();
                    assert_eq!(
                        service.submit_batch(items).expect("submit"),
                        SubmitOutcome::Accepted
                    );
                }
            });
            loop {
                match service.output.recv_timeout(Duration::from_millis(500)) {
                    Ok(item) => received.push(item),
                    Err(_) => break,
                }
            }
        });
        assert_eq!(received.len(), 40);
        let snap = service.registry().snapshot();
        assert_eq!(snap.counter("batches_submitted"), Some(5), "ceil(40/9)");
        assert_eq!(snap.batch_sizes.count, 5);
        assert_eq!(snap.batch_sizes.sum, 40);
        assert_eq!(snap.batch_sizes.max, 9);
        let (rest, letters) = service.shutdown();
        assert!(rest.is_empty());
        assert!(letters.is_empty());
    }

    #[test]
    fn rejected_batch_accounts_every_line() {
        let mut config = test_config(1, 1);
        config.overload = OverloadPolicy::DeadLetter;
        let service = SupervisedParseService::spawn(config).expect("spawn");
        // Saturate with singles (no consumer), then divert one batch of 5.
        let mut i = 0u64;
        loop {
            match service
                .submit(i, format!("filler {i} payload"))
                .expect("ok")
            {
                SubmitOutcome::Accepted => i += 1,
                SubmitOutcome::DeadLettered => break,
                SubmitOutcome::Shed => unreachable!("wrong policy"),
            }
            assert!(i < 1_000, "never saturated");
        }
        let before = service.dead_letter_count();
        let batch: Vec<Item> = (0..5)
            .map(|j| (9_000 + j, format!("batched {j}").into()))
            .collect();
        assert_eq!(
            service.submit_batch(batch).expect("ok"),
            SubmitOutcome::DeadLettered
        );
        assert_eq!(
            service.dead_letter_count(),
            before + 5,
            "every line of the rejected batch is quarantined individually"
        );
        drop(service);
    }

    #[test]
    fn drop_mid_stream_does_not_hang() {
        let plan = FaultPlan::new().crash_every(5).poison([2]);
        let service =
            SupervisedParseService::spawn_with_injector(test_config(2, 4), Some(plan.injector()))
                .expect("spawn");
        for i in 0..8 {
            let _ = service.submit(i, format!("a b {i}"));
        }
        drop(service); // must join cleanly via Drop even with faults active
    }
}
