//! Sampled span tracing and the crash flight recorder.
//!
//! PR 2's metrics answer *how fast* each stage runs in aggregate; this
//! module answers *what happened to this line*. A deterministic 1-in-N
//! sample of log lines (default 1/1024) is traced end-to-end: every stage
//! a sampled line passes through records a [`SpanRecord`] — enter/exit
//! timestamps, shard id, template id, cache hit/miss — into a per-shard
//! lock-free ring buffer. The rings double as a *flight recorder*: on a
//! shard crash, crash-loop degradation or a quarantine event the
//! supervisor dumps their contents to disk, so post-mortem evidence
//! survives the worker that produced it.
//!
//! ## Design notes
//!
//! - **Deterministic sampling.** Line `seq` is traced iff
//!   `seq % sample_rate == 0` (see `monilog_model::TraceId::from_seq`).
//!   Any stage can recompute the decision from the sequence number alone,
//!   so no per-line sampling flag crosses queue or shard boundaries.
//! - **Seqlock rings.** Each ring slot is a few `AtomicU64` words guarded
//!   by a sequence word: writers claim a slot with one `fetch_add`, mark
//!   it invalid, write the payload, then publish the new sequence. Readers
//!   re-check the sequence around their reads and discard torn slots.
//!   Writers never block and never wait for readers.
//! - **Cost when idle.** The untraced majority of lines pay one modulo
//!   and one branch. Lifecycle marks (crash/quarantine/degrade) are
//!   recorded regardless of the sampling rate — they are rare and always
//!   forensic gold.

use monilog_model::trace::json_string;
use monilog_model::TraceId;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default sampling rate: one traced line per 1024.
pub const DEFAULT_SAMPLE_RATE: u32 = 1024;
/// Default span slots per flight-recorder ring.
pub const DEFAULT_FLIGHT_CAPACITY: u32 = 4096;

/// Tracer configuration. Lives outside `SupervisorConfig`/`MoniLogConfig`
/// (which are `Copy`) because the dump directory is a path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Trace one line in `sample_rate` (0 disables span sampling; crash /
    /// quarantine marks are still recorded).
    pub sample_rate: u32,
    /// Span slots per ring; older spans are overwritten once full.
    pub ring_capacity: u32,
    /// Directory receiving flight-recorder dump files (`None` = no dumps).
    pub dump_dir: Option<PathBuf>,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            sample_rate: DEFAULT_SAMPLE_RATE,
            ring_capacity: DEFAULT_FLIGHT_CAPACITY,
            dump_dir: None,
        }
    }
}

/// The stages and lifecycle events a span can describe. A superset of
/// [`crate::observe::Stage`]: the last three are point events recorded by
/// the fault-tolerance machinery, not timed pipeline stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanStage {
    Ingest,
    MergeDedup,
    QueueWait,
    Parse,
    Window,
    Detect,
    Classify,
    /// A line exhausted its retries and was pushed to the quarantine DLQ.
    Quarantine,
    /// A shard worker died (panic or missed heartbeats).
    Crash,
    /// A shard crash-looped into catch-all degradation.
    Degrade,
}

impl SpanStage {
    pub const ALL: [SpanStage; 10] = [
        SpanStage::Ingest,
        SpanStage::MergeDedup,
        SpanStage::QueueWait,
        SpanStage::Parse,
        SpanStage::Window,
        SpanStage::Detect,
        SpanStage::Classify,
        SpanStage::Quarantine,
        SpanStage::Crash,
        SpanStage::Degrade,
    ];

    /// Stable name used in JSON renderings (pipeline stages match
    /// [`crate::observe::Stage::name`]).
    pub fn name(self) -> &'static str {
        match self {
            SpanStage::Ingest => "ingest",
            SpanStage::MergeDedup => "merge_dedup",
            SpanStage::QueueWait => "parse_queue_wait",
            SpanStage::Parse => "parse_exec",
            SpanStage::Window => "window",
            SpanStage::Detect => "detect",
            SpanStage::Classify => "classify",
            SpanStage::Quarantine => "quarantine",
            SpanStage::Crash => "crash",
            SpanStage::Degrade => "degrade",
        }
    }

    fn code(self) -> u64 {
        SpanStage::ALL.iter().position(|s| *s == self).unwrap() as u64
    }

    fn from_code(code: u64) -> Option<SpanStage> {
        SpanStage::ALL.get(code as usize).copied()
    }
}

/// One decoded span: what happened to trace `trace` in stage `stage` on
/// shard `shard` between `start_ns` and `end_ns` (nanoseconds since the
/// tracer's epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    pub trace: TraceId,
    pub stage: SpanStage,
    pub shard: u16,
    pub start_ns: u64,
    pub end_ns: u64,
    /// Template the line matched, when the stage knows it.
    pub template: Option<u32>,
    /// Whether the Drain match cache hit, for parse spans.
    pub cache_hit: Option<bool>,
}

impl SpanRecord {
    /// JSON object rendering (shared by `/trace/{id}`, `/flight` and the
    /// dump files).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"trace_id\":{},\"stage\":{},\"shard\":{},\"start_ns\":{},\"end_ns\":{},\
             \"template\":{},\"cache_hit\":{}}}",
            self.trace.0,
            json_string(self.stage.name()),
            self.shard,
            self.start_ns,
            self.end_ns,
            match self.template {
                Some(t) => t.to_string(),
                None => "null".into(),
            },
            match self.cache_hit {
                Some(h) => h.to_string(),
                None => "null".into(),
            }
        )
    }
}

// Packed meta word: stage code (8 bits) | flags (8) | shard (16) |
// template (high 32).
const FLAG_TEMPLATE: u64 = 1 << 0;
const FLAG_CACHE_KNOWN: u64 = 1 << 1;
const FLAG_CACHE_HIT: u64 = 1 << 2;

fn pack_meta(r: &SpanRecord) -> u64 {
    let mut flags = 0u64;
    if r.template.is_some() {
        flags |= FLAG_TEMPLATE;
    }
    if let Some(hit) = r.cache_hit {
        flags |= FLAG_CACHE_KNOWN;
        if hit {
            flags |= FLAG_CACHE_HIT;
        }
    }
    r.stage.code()
        | (flags << 8)
        | ((r.shard as u64) << 16)
        | ((r.template.unwrap_or(0) as u64) << 32)
}

fn unpack_meta(trace: u64, start_ns: u64, end_ns: u64, meta: u64) -> Option<SpanRecord> {
    let stage = SpanStage::from_code(meta & 0xff)?;
    let flags = (meta >> 8) & 0xff;
    Some(SpanRecord {
        trace: TraceId(trace),
        stage,
        shard: ((meta >> 16) & 0xffff) as u16,
        start_ns,
        end_ns,
        template: (flags & FLAG_TEMPLATE != 0).then_some((meta >> 32) as u32),
        cache_hit: (flags & FLAG_CACHE_KNOWN != 0).then_some(flags & FLAG_CACHE_HIT != 0),
    })
}

/// One seqlock-guarded ring slot.
#[derive(Debug, Default)]
struct Slot {
    /// 0 = empty/being written; otherwise 1 + the global write index.
    seq: AtomicU64,
    trace: AtomicU64,
    start_ns: AtomicU64,
    end_ns: AtomicU64,
    meta: AtomicU64,
}

/// A fixed-capacity lock-free span ring (one per shard).
#[derive(Debug)]
struct FlightRing {
    slots: Vec<Slot>,
    head: AtomicU64,
}

impl FlightRing {
    fn new(capacity: usize) -> Self {
        FlightRing {
            slots: (0..capacity.max(1)).map(|_| Slot::default()).collect(),
            head: AtomicU64::new(0),
        }
    }

    fn push(&self, r: &SpanRecord) {
        let idx = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(idx % self.slots.len() as u64) as usize];
        // Invalidate, write payload, publish. A reader that races with us
        // observes either seq == 0 or a seq change and discards the slot.
        slot.seq.store(0, Ordering::Release);
        slot.trace.store(r.trace.0, Ordering::Relaxed);
        slot.start_ns.store(r.start_ns, Ordering::Relaxed);
        slot.end_ns.store(r.end_ns, Ordering::Relaxed);
        slot.meta.store(pack_meta(r), Ordering::Relaxed);
        slot.seq.store(idx + 1, Ordering::Release);
    }

    /// Snapshot every consistently-readable slot as `(write_index, span)`.
    fn read(&self) -> Vec<(u64, SpanRecord)> {
        let mut out = Vec::new();
        for slot in &self.slots {
            let before = slot.seq.load(Ordering::Acquire);
            if before == 0 {
                continue;
            }
            let trace = slot.trace.load(Ordering::Relaxed);
            let start_ns = slot.start_ns.load(Ordering::Relaxed);
            let end_ns = slot.end_ns.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let after = slot.seq.load(Ordering::Acquire);
            if before != after {
                continue; // torn read, writer got there first
            }
            if let Some(r) = unpack_meta(trace, start_ns, end_ns, meta) {
                out.push((before - 1, r));
            }
        }
        out
    }
}

/// The span tracer and flight recorder shared by every pipeline stage.
///
/// Cheap to share (`Arc`), lock-free to write. One ring per shard plus
/// ring 0 for the sequential (non-sharded) stages; `record` maps any
/// shard id onto the available rings.
#[derive(Debug)]
pub struct Tracer {
    /// Atomic so the live ops surface can retune sampling without a
    /// restart; every read is a relaxed load on the hot path.
    sample_rate: AtomicU32,
    epoch: Instant,
    rings: Vec<FlightRing>,
    dump_dir: Option<PathBuf>,
    dumps_written: AtomicU64,
}

impl Tracer {
    /// A tracer with `n_rings` rings (use the shard count; 1 for
    /// sequential deployments).
    pub fn new(config: &TraceConfig, n_rings: usize) -> Self {
        Tracer {
            sample_rate: AtomicU32::new(config.sample_rate),
            epoch: Instant::now(),
            rings: (0..n_rings.max(1))
                .map(|_| FlightRing::new(config.ring_capacity as usize))
                .collect(),
            dump_dir: config.dump_dir.clone(),
            dumps_written: AtomicU64::new(0),
        }
    }

    /// `Arc`-wrapped constructor for the common sharing case.
    pub fn shared(config: &TraceConfig, n_rings: usize) -> Arc<Self> {
        Arc::new(Self::new(config, n_rings))
    }

    /// A tracer that samples nothing (marks and dumps still work).
    pub fn disabled() -> Arc<Self> {
        Self::shared(
            &TraceConfig {
                sample_rate: 0,
                ring_capacity: 1,
                ..TraceConfig::default()
            },
            1,
        )
    }

    pub fn sample_rate(&self) -> u32 {
        self.sample_rate.load(Ordering::Relaxed)
    }

    /// Swap the sampling rate live (0 disables span sampling). In-flight
    /// lines keep whatever decision they computed; new lines see the new
    /// rate on their next `trace_for` call.
    pub fn set_sample_rate(&self, rate: u32) {
        self.sample_rate.store(rate, Ordering::Relaxed);
    }

    /// True when span sampling is on.
    pub fn enabled(&self) -> bool {
        self.sample_rate() > 0
    }

    /// The sampling decision for line `seq` — the single hot-path entry
    /// point (one modulo, one branch for the untraced majority).
    #[inline]
    pub fn trace_for(&self, seq: u64) -> Option<TraceId> {
        TraceId::from_seq(seq, self.sample_rate())
    }

    /// Nanoseconds since the tracer's epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Record a finished span.
    pub fn record(&self, span: SpanRecord) {
        let ring = (span.shard as usize) % self.rings.len();
        self.rings[ring].push(&span);
    }

    /// Record a span that started at `start` and ends now.
    #[allow(clippy::too_many_arguments)]
    pub fn record_since(
        &self,
        trace: TraceId,
        stage: SpanStage,
        shard: u16,
        start: Instant,
        template: Option<u32>,
        cache_hit: Option<bool>,
    ) {
        let end_ns = self.now_ns();
        let dur = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.record(SpanRecord {
            trace,
            stage,
            shard,
            start_ns: end_ns.saturating_sub(dur),
            end_ns,
            template,
            cache_hit,
        });
    }

    /// Record a point-in-time lifecycle event (crash, quarantine,
    /// degradation). Always recorded, independent of the sampling rate.
    pub fn mark(&self, trace: TraceId, stage: SpanStage, shard: u16, template: Option<u32>) {
        let now = self.now_ns();
        self.record(SpanRecord {
            trace,
            stage,
            shard,
            start_ns: now,
            end_ns: now,
            template,
            cache_hit: None,
        });
    }

    /// Every span of one trace, in start order.
    pub fn spans_for(&self, trace: TraceId) -> Vec<SpanRecord> {
        let mut spans: Vec<SpanRecord> = self
            .rings
            .iter()
            .flat_map(|r| r.read())
            .filter(|(_, s)| s.trace == trace)
            .map(|(_, s)| s)
            .collect();
        spans.sort_by_key(|s| (s.start_ns, s.end_ns));
        spans
    }

    /// Every currently-readable span across all rings, in write order per
    /// ring then start order.
    pub fn recent(&self) -> Vec<SpanRecord> {
        let mut indexed: Vec<(u64, SpanRecord)> =
            self.rings.iter().flat_map(|r| r.read()).collect();
        indexed.sort_by_key(|(_, s)| (s.start_ns, s.end_ns));
        indexed.into_iter().map(|(_, s)| s).collect()
    }

    /// The `/trace/{id}` span tree: the trace id plus its spans in
    /// pipeline order. Returns `None` when no span of the trace is still
    /// in any ring.
    pub fn trace_json(&self, trace: TraceId) -> Option<String> {
        let spans = self.spans_for(trace);
        if spans.is_empty() {
            return None;
        }
        let body: Vec<String> = spans.iter().map(|s| s.to_json()).collect();
        Some(format!(
            "{{\"trace_id\":{},\"seq\":{},\"spans\":[{}]}}",
            trace.0,
            trace.seq(),
            body.join(",")
        ))
    }

    /// The `/flight` rendering: recorder configuration plus every
    /// currently-readable span.
    pub fn flight_json(&self) -> String {
        let spans: Vec<String> = self.recent().iter().map(|s| s.to_json()).collect();
        format!(
            "{{\"sample_rate\":{},\"rings\":{},\"ring_capacity\":{},\"dumps_written\":{},\
             \"spans\":[{}]}}",
            self.sample_rate(),
            self.rings.len(),
            self.rings[0].slots.len(),
            self.dumps_written.load(Ordering::Relaxed),
            spans.join(",")
        )
    }

    /// Chrome trace-event JSON (`chrome://tracing` / Perfetto): one
    /// complete (`"ph":"X"`) event per span, timestamps in microseconds,
    /// one row (`tid`) per shard.
    pub fn chrome_trace_json(&self) -> String {
        let events: Vec<String> = self
            .recent()
            .iter()
            .map(|s| {
                format!(
                    "{{\"name\":{},\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\
                     \"tid\":{},\"args\":{}}}",
                    json_string(s.stage.name()),
                    s.start_ns as f64 / 1_000.0,
                    (s.end_ns.saturating_sub(s.start_ns)) as f64 / 1_000.0,
                    s.shard,
                    {
                        let mut args = format!("{{\"trace_id\":{}", s.trace.0);
                        if let Some(t) = s.template {
                            args.push_str(&format!(",\"template\":{t}"));
                        }
                        if let Some(h) = s.cache_hit {
                            args.push_str(&format!(",\"cache_hit\":{h}"));
                        }
                        args.push('}');
                        args
                    }
                )
            })
            .collect();
        format!("{{\"traceEvents\":[{}]}}", events.join(","))
    }

    /// Dump the flight recorder to `dump_dir` (no-op returning `None`
    /// when no dump directory is configured). Files are named
    /// `monilog-flight-<reason>-<n>.json` with a monotone counter, so
    /// repeated dumps never clobber each other. The dump is written to a
    /// `.tmp` sibling and renamed into place: a crash (or a second crash
    /// during the dump of the first) can never leave a half-written JSON
    /// file under the final name.
    pub fn dump(&self, reason: &str) -> Option<PathBuf> {
        let dir = self.dump_dir.as_ref()?;
        let n = self.dumps_written.fetch_add(1, Ordering::Relaxed);
        let safe: String = reason
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        let path = dir.join(format!("monilog-flight-{safe}-{n}.json"));
        let body = format!(
            "{{\"reason\":{},\"flight\":{}}}\n",
            json_string(reason),
            self.flight_json()
        );
        if std::fs::create_dir_all(dir).is_err() {
            return None;
        }
        let tmp = path.with_extension("json.tmp");
        if std::fs::write(&tmp, body).is_err() {
            return None;
        }
        match std::fs::rename(&tmp, &path) {
            Ok(()) => Some(path),
            Err(_) => {
                let _ = std::fs::remove_file(&tmp);
                None
            }
        }
    }

    /// Number of dump files written so far.
    pub fn dumps_written(&self) -> u64 {
        self.dumps_written.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, stage: SpanStage, shard: u16, start: u64) -> SpanRecord {
        SpanRecord {
            trace: TraceId(trace),
            stage,
            shard,
            start_ns: start,
            end_ns: start + 10,
            template: Some(3),
            cache_hit: Some(true),
        }
    }

    #[test]
    fn meta_packing_round_trips() {
        for stage in SpanStage::ALL {
            for (template, cache_hit) in [
                (None, None),
                (Some(0), Some(false)),
                (Some(u32::MAX), Some(true)),
                (Some(42), None),
            ] {
                let r = SpanRecord {
                    trace: TraceId(7),
                    stage,
                    shard: 513,
                    start_ns: 1,
                    end_ns: 2,
                    template,
                    cache_hit,
                };
                let back = unpack_meta(7, 1, 2, pack_meta(&r)).unwrap();
                assert_eq!(back, r);
            }
        }
    }

    #[test]
    fn ring_keeps_only_the_newest_spans() {
        let t = Tracer::new(
            &TraceConfig {
                sample_rate: 1,
                ring_capacity: 4,
                dump_dir: None,
            },
            1,
        );
        for i in 0..10u64 {
            t.record(span(i + 1, SpanStage::Parse, 0, i * 100));
        }
        let recent = t.recent();
        assert_eq!(recent.len(), 4, "ring holds its capacity");
        let ids: Vec<u64> = recent.iter().map(|s| s.trace.0).collect();
        assert_eq!(ids, vec![7, 8, 9, 10], "oldest spans were overwritten");
    }

    #[test]
    fn spans_for_filters_and_sorts() {
        let t = Tracer::new(&TraceConfig::default(), 2);
        t.record(span(5, SpanStage::Parse, 1, 200));
        t.record(span(5, SpanStage::Ingest, 0, 100));
        t.record(span(9, SpanStage::Parse, 1, 150));
        let spans = t.spans_for(TraceId(5));
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].stage, SpanStage::Ingest);
        assert_eq!(spans[1].stage, SpanStage::Parse);
        assert!(t.spans_for(TraceId(77)).is_empty());
    }

    #[test]
    fn sampling_respects_rate_and_disabled() {
        let t = Tracer::new(&TraceConfig::default(), 1);
        assert_eq!(t.trace_for(0), Some(TraceId(1)));
        assert_eq!(t.trace_for(1), None);
        assert_eq!(t.trace_for(1024), Some(TraceId(1025)));
        let off = Tracer::disabled();
        assert!(!off.enabled());
        assert_eq!(off.trace_for(0), None);
    }

    #[test]
    fn trace_json_and_flight_json_are_well_formed() {
        let t = Tracer::new(&TraceConfig::default(), 1);
        t.record(span(1, SpanStage::Ingest, 0, 100));
        t.record(span(1, SpanStage::Parse, 0, 200));
        let json = t.trace_json(TraceId(1)).unwrap();
        assert!(
            json.starts_with("{\"trace_id\":1,\"seq\":0,\"spans\":["),
            "{json}"
        );
        assert!(json.contains("\"stage\":\"ingest\""), "{json}");
        assert!(json.contains("\"cache_hit\":true"), "{json}");
        assert_eq!(t.trace_json(TraceId(99)), None);
        let flight = t.flight_json();
        assert!(flight.contains("\"sample_rate\":1024"), "{flight}");
        assert!(flight.contains("\"spans\":[{"), "{flight}");
    }

    #[test]
    fn chrome_trace_events_have_complete_phase() {
        let t = Tracer::new(&TraceConfig::default(), 1);
        t.record(span(1, SpanStage::Detect, 2, 5_000));
        let json = t.chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"tid\":2"), "{json}");
        assert!(json.contains("\"ts\":5.000"), "{json}");
    }

    #[test]
    fn marks_record_even_when_sampling_is_off() {
        let t = Tracer::new(
            &TraceConfig {
                sample_rate: 0,
                ring_capacity: 8,
                dump_dir: None,
            },
            1,
        );
        t.mark(TraceId(3), SpanStage::Quarantine, 1, None);
        let spans = t.recent();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].stage, SpanStage::Quarantine);
        assert_eq!(spans[0].start_ns, spans[0].end_ns);
    }

    #[test]
    fn dump_writes_sequenced_files() {
        let dir = std::env::temp_dir().join(format!(
            "monilog-trace-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let t = Tracer::new(
            &TraceConfig {
                dump_dir: Some(dir.clone()),
                ..TraceConfig::default()
            },
            1,
        );
        t.record(span(1, SpanStage::Parse, 0, 100));
        let p0 = t.dump("crash: shard 0").expect("dump written");
        let p1 = t.dump("crash: shard 0").expect("dump written");
        assert_ne!(p0, p1, "repeated dumps do not clobber");
        let body = std::fs::read_to_string(&p0).unwrap();
        assert!(body.starts_with("{\"reason\":\"crash: shard 0\""), "{body}");
        assert!(body.contains("\"flight\":{"), "{body}");
        assert_eq!(t.dumps_written(), 2);
        // No dump dir → no dump.
        assert_eq!(Tracer::new(&TraceConfig::default(), 1).dump("x"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_never_corrupt_readers() {
        let t = Arc::new(Tracer::new(
            &TraceConfig {
                sample_rate: 1,
                ring_capacity: 64,
                dump_dir: None,
            },
            2,
        ));
        std::thread::scope(|scope| {
            for shard in 0..4u16 {
                let t = Arc::clone(&t);
                scope.spawn(move || {
                    for i in 0..5_000u64 {
                        t.record(span(i + 1, SpanStage::Parse, shard, i));
                    }
                });
            }
            // Concurrent reader: every decoded span must be internally
            // consistent (the seqlock discards torn slots).
            let t = Arc::clone(&t);
            scope.spawn(move || {
                for _ in 0..50 {
                    for s in t.recent() {
                        assert_eq!(s.stage, SpanStage::Parse);
                        assert_eq!(s.end_ns, s.start_ns + 10);
                        assert_eq!(s.template, Some(3));
                    }
                }
            });
        });
        assert!(!t.recent().is_empty());
    }
}
