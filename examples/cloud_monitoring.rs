//! Cloud monitoring: MoniLog on the paper's reference shape — a system
//! "connected to 24 different log sources", mixed into one stream, with
//! cross-source incidents, transport noise, and a monitoring team whose
//! pool moves passively train the classifier (Section V).
//!
//! Run with: `cargo run --release -p monilog-core --example cloud_monitoring`

use monilog_core::classify::{AdminPolicy, AdminSimulator};
use monilog_core::detect::PcaDetectorConfig;
use monilog_core::model::RawLog;
use monilog_core::{DetectorChoice, MoniLog, MoniLogConfig, WindowPolicy};
use monilog_loggen::{CloudWorkload, CloudWorkloadConfig, NoiseConfig, NoiseInjector};

fn main() {
    println!("=== MoniLog cloud monitoring (24 sources) ===\n");

    // ── Training: normal multi-source traffic ────────────────────────────
    let training = CloudWorkload::new(CloudWorkloadConfig {
        walks_per_source: 120,
        seed: 10,
        ..CloudWorkloadConfig::default()
    })
    .generate();

    let mut monilog = MoniLog::new(MoniLogConfig {
        // Multi-source streams have no global session key → tumbling windows.
        window: WindowPolicy::Tumbling { size: 40 },
        detector: DetectorChoice::Pca(PcaDetectorConfig::default()),
        reorder_bound_ms: 2_000,
        ..MoniLogConfig::default()
    });

    println!("training on {} lines from 24 sources ...", training.len());
    for log in &training {
        monilog.ingest_training(&RawLog::new(
            log.record.source,
            log.record.seq,
            log.record.to_line(),
        ));
    }
    monilog.train();
    println!("templates discovered: {}", monilog.templates().len());

    // ── Live traffic with incidents and transport noise ─────────────────
    let live = CloudWorkload::new(CloudWorkloadConfig {
        walks_per_source: 60,
        n_incidents: 4,
        seed: 11,
        start_ms: 1_600_003_600_000,
        ..CloudWorkloadConfig::default()
    })
    .generate();
    // "Logs can arrive in mixed order or sometimes be duplicated" (§I).
    let noisy = NoiseInjector::new(NoiseConfig {
        max_delay_ms: 500,
        duplicate_prob: 0.02,
        drop_prob: 0.0,
        seed: 12,
    })
    .apply(&live);

    println!(
        "\nmonitoring {} live lines (noise: reordering + duplicates) ...",
        noisy.len()
    );
    let mut anomalies = Vec::new();
    for log in &noisy {
        // Live sequence numbers continue after the training range.
        anomalies.extend(monilog.ingest(&RawLog::new(
            log.record.source,
            log.record.seq + 10_000_000,
            log.record.to_line(),
        )));
    }
    anomalies.extend(monilog.flush());
    println!("flagged {} anomalous windows", anomalies.len());

    // ── The monitoring team handles alerts; the classifier learns ───────
    let network_pool = monilog.classifier_mut().create_pool("network-team");
    let storage_pool = monilog.classifier_mut().create_pool("storage-team");
    let capacity_pool = monilog.classifier_mut().create_pool("capacity-team");
    let policy = AdminPolicy {
        // Sources 3, 11, 19 are netAgents; 4, 12, 20 storageNodes (archetype
        // layout of the cloud workload).
        source_pools: vec![
            (3, 3, network_pool),
            (11, 11, network_pool),
            (19, 19, network_pool),
            (4, 4, storage_pool),
            (12, 12, storage_pool),
            (20, 20, storage_pool),
        ],
        quantitative_pool: Some(capacity_pool),
        default_pool: monilog_core::classify::PoolRegistry::DEFAULT,
        noise: 0.05,
    };
    let mut admin = AdminSimulator::new(policy, 13);
    let pools = [network_pool, storage_pool, capacity_pool];

    // Replay the alert queue several times: real teams see similar
    // anomalies week after week, and each pass gives the classifier more
    // passive signals. Measure routing accuracy before and after.
    let accuracy = |monilog: &mut monilog_core::MoniLog,
                    anomalies: &[monilog_core::ClassifiedAnomaly],
                    policy: &AdminPolicy| {
        let hits = anomalies
            .iter()
            .filter(|a| {
                monilog.classifier_mut().classify(&a.report).pool == policy.true_pool(&a.report)
            })
            .count();
        100.0 * hits as f64 / anomalies.len().max(1) as f64
    };
    let before = accuracy(&mut monilog, &anomalies, &admin.policy);
    for _pass in 0..5 {
        for anomaly in &anomalies {
            let (pool, level) = admin.act(&anomaly.report, &pools);
            monilog.feedback_move(anomaly, pool);
            monilog.feedback_criticality(anomaly, level);
        }
    }
    let after = accuracy(&mut monilog, &anomalies, &admin.policy);
    println!(
        "\nclassifier routing accuracy: {before:.0}% before feedback → {after:.0}% after \
         {} passive signals",
        monilog.classifier_mut().feedback_events(),
    );

    println!("\npipeline metrics: {}", monilog.metrics().snapshot());
}
