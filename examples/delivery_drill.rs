//! Delivery drill: at-least-once anomaly delivery against a flaky sink.
//!
//! Trains on a small HDFS-like workload, then monitors a live stream
//! with the durable pipeline delivering every anomaly report to an
//! in-process [`FlakySinkServer`] whose first connections are scripted
//! faults — refused, reset mid-frame, accepted-but-never-acked. Watch
//! the circuit breaker trip, probe, and recover, then see the ledger
//! balance: every report the pipeline emitted is delivered exactly once
//! after receiver-side dedup.
//!
//! ```text
//! cargo run --release -p monilog-core --example delivery_drill
//! ```
//!
//! The same machinery drives `monilog monitor --state-dir <dir>
//! --sink-tcp <host:port>`; experiment D6 (`exp_d6_delivery`, a CI
//! gate) additionally SIGKILLs the monitor with a pending buffer and
//! asserts nothing is lost across the restart.

use monilog_core::detect::DeepLogConfig;
use monilog_core::model::{DeliveryClass, RawLog};
use monilog_core::stream::chaos::{FlakySinkServer, SinkFault, SinkProtocol};
use monilog_core::stream::sinks::{DeliveryConfig, FramedTcpSink, RouteSpec};
use monilog_core::stream::{BreakerState, PipelineMetrics};
use monilog_core::{
    DeliverySetup, DetectorChoice, DurableConfig, DurableMoniLog, MoniLog, MoniLogConfig,
    WindowPolicy,
};
use monilog_loggen::{GenLog, HdfsWorkload, HdfsWorkloadConfig};
use std::time::Duration;

fn to_raw(log: &GenLog) -> RawLog {
    RawLog::new(log.record.source, log.record.seq, log.record.to_line())
}

fn main() {
    let config = MoniLogConfig {
        window: WindowPolicy::Session {
            idle_ms: 2_000,
            max_events: 64,
        },
        detector: DetectorChoice::DeepLog(DeepLogConfig::default()),
        ..MoniLogConfig::default()
    };

    println!("== training on an anomaly-free stream ==");
    let training = HdfsWorkload::new(HdfsWorkloadConfig {
        n_sessions: 200,
        sequential_anomaly_rate: 0.0,
        quantitative_anomaly_rate: 0.0,
        seed: 6,
        start_ms: 1_600_000_000_000,
    })
    .generate();
    let mut pipeline = MoniLog::new(config);
    for log in &training {
        pipeline.ingest_training(&to_raw(log));
    }
    pipeline.train();

    // A scripted flaky endpoint: the first three connections fail in
    // three different ways — exactly the breaker's trip threshold.
    let server = FlakySinkServer::spawn(
        "127.0.0.1:0",
        SinkProtocol::Framed,
        vec![
            SinkFault::Refuse,
            SinkFault::ResetMidFrame,
            SinkFault::Http429, // framed mode: accept a frame, ack nothing
        ],
    )
    .expect("spawn flaky sink");
    println!("\n== flaky sink listening on {} ==", server.addr());

    let state_dir =
        std::env::temp_dir().join(format!("monilog-delivery-drill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    let mut delivery_config = DeliveryConfig::new("overridden-by-open");
    delivery_config.retry.base_backoff = Duration::from_millis(25);
    delivery_config.retry.max_backoff = Duration::from_millis(250);
    let setup = DeliverySetup::new(
        delivery_config,
        vec![RouteSpec {
            name: "tcp".into(),
            classes: DeliveryClass::ALL.to_vec(),
            sink: Box::new(FramedTcpSink::new(server.addr().to_string())),
        }],
    );
    let (mut durable, _) = DurableMoniLog::open_with_delivery(
        config,
        DurableConfig::new(&state_dir),
        || Ok(pipeline),
        Some(setup),
    )
    .expect("open durable pipeline");

    println!("\n== monitoring a live stream with 15% anomalous sessions ==");
    let live = HdfsWorkload::new(HdfsWorkloadConfig {
        n_sessions: 2_000,
        sequential_anomaly_rate: 0.15,
        quantitative_anomaly_rate: 0.0,
        seed: 7,
        start_ms: 1_600_003_600_000,
    })
    .generate();
    let mut emitted = 0usize;
    let mut last_state = BreakerState::Closed;
    for (i, log) in live.iter().enumerate() {
        emitted += durable.ingest(&to_raw(log)).expect("ingest").len();
        if i % 500 == 0 {
            if let Some((_, state)) = durable
                .delivery()
                .expect("delivery attached")
                .breaker_states()
                .into_iter()
                .next()
            {
                if state != last_state {
                    println!(
                        "line {i:>6}: breaker {last_state:?} -> {state:?}, \
                         {} ids acked so far",
                        server.delivered_ids().len()
                    );
                    last_state = state;
                }
            }
        }
    }

    let metrics = durable.pipeline().metrics();
    let (tail, _) = durable.finish().expect("finish");
    emitted += tail.len();

    println!("\n== ledger ==");
    println!("reports emitted:      {emitted}");
    println!("reports delivered:    {}", server.delivered_ids().len());
    println!(
        "delivery attempts retried: {}",
        PipelineMetrics::get(&metrics.delivery_retries)
    );
    println!(
        "breaker opened/half-open:  {}/{}",
        PipelineMetrics::get(&metrics.breaker_opened),
        PipelineMetrics::get(&metrics.breaker_half_open)
    );
    println!(
        "connections to the sink:   {} (3 scripted faults + probes + delivery)",
        server.connections()
    );
    println!("duplicate acks absorbed:   {}", server.duplicate_acks());
    assert_eq!(
        server.delivered_ids().len(),
        emitted,
        "every emitted report must be delivered exactly once after dedup"
    );
    println!("\nevery emitted report delivered exactly once after dedup");
    let _ = std::fs::remove_dir_all(&state_dir);
}
