//! Fault-tolerant streaming — the supervised parse service under chaos.
//!
//! A monitor that dies when one malformed line panics a parser is worse
//! than no monitor. This example runs the standing sharded parse service
//! under its supervisor while a deterministic fault plan kills workers
//! and injects poison lines, then shows what survived: everything except
//! the quarantined lines, with template ids untouched by the respawns.
//!
//! Run with: `cargo run --release -p monilog-core --example fault_tolerant_service`

use monilog_core::stream::{FaultPlan, SupervisedParseService, SupervisorConfig};
use monilog_loggen::{CloudWorkload, CloudWorkloadConfig};
use std::time::{Duration, Instant};

fn main() {
    println!("=== Supervised parse service under chaos injection ===\n");
    let logs = CloudWorkload::new(CloudWorkloadConfig {
        walks_per_source: 40,
        seed: 23,
        ..CloudWorkloadConfig::default()
    })
    .generate();
    let lines: Vec<String> = logs.iter().map(|l| l.record.message.to_string()).collect();
    println!(
        "workload: {} lines from a 24-source cloud platform",
        lines.len()
    );

    // Kill a worker every 500th line and poison two specific lines: the
    // poison panics the parser on every retry, the kills take the whole
    // worker thread down mid-stream.
    let plan = FaultPlan::new().crash_every(500).poison([700, 1400]);
    println!(
        "fault plan: ~{} worker kills, {} poison lines\n",
        plan.expected_crashes(lines.len() as u64),
        plan.expected_poisoned(lines.len() as u64),
    );

    let config = SupervisorConfig {
        n_shards: 4,
        heartbeat_interval: Duration::from_millis(5),
        ..SupervisorConfig::default()
    };
    let mut service = SupervisedParseService::spawn_with_injector(config, Some(plan.injector()))
        .expect("valid supervisor config");

    let received = std::thread::scope(|s| {
        s.spawn(|| {
            for (i, line) in lines.iter().enumerate() {
                service
                    .submit(i as u64, line.clone())
                    .expect("service accepts until closed");
            }
        });
        let mut received = 0usize;
        let mut idle = Instant::now();
        loop {
            match service.try_recv() {
                Some(_) => {
                    received += 1;
                    idle = Instant::now();
                }
                None => {
                    if idle.elapsed() > Duration::from_millis(500) {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        }
        received
    });

    let metrics = service.metrics();
    println!("stream complete:");
    println!("  {}", metrics.snapshot());
    for health in service.shard_status() {
        println!(
            "  shard {}: alive={} degraded={} crashes={}",
            health.shard, health.alive, health.degraded, health.consecutive_crashes
        );
    }

    service.close();
    let (rest, mut letters) = service.shutdown();
    letters.sort_by_key(|l| l.seq);
    println!("\nquarantine ({} dead letters):", letters.len());
    for letter in &letters {
        println!(
            "  seq {} [{:?}, {} attempts] {:.60}",
            letter.seq, letter.reason, letter.attempts, letter.line
        );
    }
    println!(
        "\n{} of {} lines parsed — every loss is accounted for above.",
        received + rest.len(),
        lines.len()
    );
}
