//! Instability drill: what continuous integration does to detectors.
//!
//! "The code base and log statements evolve at a fast pace, which
//! eventually induces instability within the log stream" (Section I).
//! This example trains DeepLog and LogAnomaly on a stable stream, then
//! replays the *same normal behaviour* after a simulated code change
//! (twisted statements). DeepLog's closed-world assumption turns every
//! evolved line into a false alarm; LogAnomaly's semantic matching
//! absorbs most of them — the contrast that motivates the MoniLog design.
//!
//! Run with: `cargo run --release -p monilog-core --example instability_drill`

use monilog_core::detect::window::session_windows;
use monilog_core::detect::{
    DeepLog, DeepLogConfig, Detector, LogAnomaly, LogAnomalyConfig, TrainSet, Window,
};
use monilog_core::parse::{Drain, DrainConfig, OnlineParser};
use monilog_loggen::{
    GenLog, HdfsWorkload, HdfsWorkloadConfig, InstabilityConfig, InstabilityInjector,
    InstabilityKind,
};

/// Parse a stream and group it into per-session windows.
fn windows_of(parser: &mut Drain, logs: &[GenLog]) -> Vec<Window> {
    let events = logs.iter().map(|log| {
        let outcome = parser.parse(&log.record.message);
        let numerics: Vec<f64> = outcome
            .variables
            .iter()
            .filter_map(|v| monilog_core::model::event::parse_numeric(v))
            .collect();
        (
            log.truth.session.clone().expect("hdfs lines have sessions"),
            outcome.template.0,
            numerics,
        )
    });
    session_windows(events)
        .into_iter()
        .map(|(_, w)| w)
        .collect()
}

fn false_alarm_rate(detector: &dyn Detector, windows: &[Window]) -> f64 {
    let flagged = windows.iter().filter(|w| detector.predict(w)).count();
    flagged as f64 / windows.len().max(1) as f64
}

fn main() {
    println!("=== Instability drill: a simulated code change ===\n");

    // Stable normal stream → parse → train both detectors.
    let stable = HdfsWorkload::new(HdfsWorkloadConfig {
        n_sessions: 300,
        sequential_anomaly_rate: 0.0,
        quantitative_anomaly_rate: 0.0,
        seed: 21,
        ..Default::default()
    })
    .generate();
    let mut parser = Drain::new(DrainConfig::default());
    let train_windows = windows_of(&mut parser, &stable);
    let train = TrainSet::unlabeled(train_windows).with_templates(parser.store().clone());

    let mut deeplog = DeepLog::new(DeepLogConfig {
        history: 6,
        top_g: 2,
        epochs: 3,
        ..DeepLogConfig::default()
    });
    deeplog.fit(&train);
    let mut loganomaly = LogAnomaly::new(LogAnomalyConfig {
        history: 6,
        top_g: 2,
        epochs: 3,
        ..LogAnomalyConfig::default()
    });
    loganomaly.fit(&train);

    // The same normal behaviour, before and after the "deploy".
    let fresh_normal = HdfsWorkload::new(HdfsWorkloadConfig {
        n_sessions: 150,
        sequential_anomaly_rate: 0.0,
        quantitative_anomaly_rate: 0.0,
        seed: 22,
        ..Default::default()
    })
    .generate();
    let evolved = InstabilityInjector::new(InstabilityConfig {
        ratio: 0.30,
        kinds: vec![InstabilityKind::TwistStatement],
        seed: 23,
    })
    .apply(&fresh_normal);
    let twisted_lines = evolved.iter().filter(|l| l.truth.unstable).count();
    println!(
        "simulated code change twisted {} of {} lines ({:.0}%)\n",
        twisted_lines,
        evolved.len(),
        100.0 * twisted_lines as f64 / evolved.len() as f64
    );

    // Parse both streams with the SAME evolving parser (new templates get
    // discovered on the fly, as in production), refresh semantic views.
    let before = windows_of(&mut parser, &fresh_normal);
    let after = windows_of(&mut parser, &evolved);
    deeplog.update_templates(parser.store());
    loganomaly.update_templates(parser.store());

    println!(
        "{:<12} {:>22} {:>22}",
        "detector", "false alarms (stable)", "false alarms (evolved)"
    );
    for (name, detector) in [
        ("DeepLog", &deeplog as &dyn Detector),
        ("LogAnomaly", &loganomaly as &dyn Detector),
    ] {
        println!(
            "{:<12} {:>21.1}% {:>21.1}%",
            name,
            100.0 * false_alarm_rate(detector, &before),
            100.0 * false_alarm_rate(detector, &after),
        );
    }

    println!(
        "\nEvery line in both test streams is behaviourally NORMAL — only the \
         wording of some statements changed. DeepLog treats each new template id \
         as an anomaly (closed world); LogAnomaly matches evolved templates to \
         their nearest known neighbour and stays quiet."
    );
}
