//! Metrics endpoint demo: run the pipeline, then serve its metrics.
//!
//! Trains on a small HDFS-like workload, monitors a live stream, then
//! keeps the Prometheus/JSON endpoint up for `--serve-secs` so it can be
//! scraped (CI smoke-tests it with curl):
//!
//! ```text
//! cargo run --release -p monilog-core --example metrics_endpoint -- \
//!     --metrics-addr 127.0.0.1:9187 --serve-secs 10
//! curl http://127.0.0.1:9187/metrics        # Prometheus text format
//! curl http://127.0.0.1:9187/metrics.json   # same snapshot as JSON
//! curl http://127.0.0.1:9187/trace/1        # spans of sampled line seq 0
//! curl http://127.0.0.1:9187/flight         # flight-recorder contents
//! ```
//!
//! Tracing runs at the default 1/1024 sample rate; sequence number 0 is
//! always a multiple of the rate, so trace id 1 is always resolvable.

use monilog_core::detect::DeepLogConfig;
use monilog_core::model::RawLog;
use monilog_core::stream::MetricsExporter;
use monilog_core::{DetectorChoice, MoniLog, MoniLogConfig, WindowPolicy};
use monilog_loggen::{GenLog, HdfsWorkload, HdfsWorkloadConfig};
use std::net::SocketAddr;
use std::time::Duration;

fn to_raw(log: &GenLog, seq_offset: u64) -> RawLog {
    RawLog::new(
        log.record.source,
        log.record.seq + seq_offset,
        log.record.to_line(),
    )
}

fn parse_flags() -> (SocketAddr, u64) {
    let mut addr: SocketAddr = "127.0.0.1:9187".parse().expect("literal addr");
    let mut serve_secs = 10u64;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--metrics-addr" => {
                i += 1;
                addr = args
                    .get(i)
                    .expect("--metrics-addr needs host:port")
                    .parse()
                    .expect("valid host:port");
            }
            "--serve-secs" => {
                i += 1;
                serve_secs = args
                    .get(i)
                    .expect("--serve-secs needs seconds")
                    .parse()
                    .expect("valid seconds");
            }
            other => panic!("unknown flag {other}"),
        }
        i += 1;
    }
    (addr, serve_secs)
}

fn main() {
    let (addr, serve_secs) = parse_flags();

    let mut monilog = MoniLog::new(MoniLogConfig {
        window: WindowPolicy::Session {
            idle_ms: 2_000,
            max_events: 64,
        },
        detector: DetectorChoice::DeepLog(DeepLogConfig {
            history: 6,
            top_g: 2,
            epochs: 2,
            ..DeepLogConfig::default()
        }),
        ..MoniLogConfig::default()
    });

    // Serve from the start so training latencies are scrapable too.
    let exporter = MetricsExporter::spawn_with_tracer(
        addr,
        monilog.registry(),
        Duration::from_millis(250),
        Some(monilog.tracer()),
    )
    .expect("bind metrics endpoint");
    println!("metrics: http://{}/metrics", exporter.local_addr());
    println!("         http://{}/metrics.json", exporter.local_addr());
    println!("trace:   http://{}/trace/1", exporter.local_addr());
    println!("flight:  http://{}/flight", exporter.local_addr());

    let training = HdfsWorkload::new(HdfsWorkloadConfig {
        n_sessions: 150,
        sequential_anomaly_rate: 0.0,
        quantitative_anomaly_rate: 0.0,
        seed: 1,
        ..Default::default()
    })
    .generate();
    println!("training on {} lines ...", training.len());
    for log in &training {
        monilog.ingest_training(&to_raw(log, 0));
    }
    monilog.train();

    let live = HdfsWorkload::new(HdfsWorkloadConfig {
        n_sessions: 80,
        sequential_anomaly_rate: 0.05,
        quantitative_anomaly_rate: 0.03,
        seed: 2,
        start_ms: 1_600_003_600_000,
    })
    .generate();
    println!("monitoring {} live lines ...", live.len());
    let mut anomalies = Vec::new();
    for log in &live {
        anomalies.extend(monilog.ingest(&to_raw(log, 10_000_000)));
    }
    anomalies.extend(monilog.flush());
    println!(
        "flagged {} windows; {} templates discovered",
        anomalies.len(),
        monilog.templates().len()
    );

    println!("serving metrics for {serve_secs}s ...");
    std::thread::sleep(Duration::from_secs(serve_secs));
    println!("final snapshot: {}", monilog.registry().snapshot());
}
