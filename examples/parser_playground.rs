//! Parser playground: every log parser in the workspace side by side on
//! the same corpus — a miniature of the Section IV benchmark (experiment
//! P4/P5), including the paper's Eq. 1 token-accuracy metric.
//!
//! Run with: `cargo run --release -p monilog-core --example parser_playground`

use monilog_core::parse::eval::{grouping_accuracy, token_accuracy, TokenAccuracyInput};
use monilog_core::parse::{
    BatchParser, Drain, DrainConfig, IpLoM, IpLoMConfig, LenMa, LenMaConfig, Logan, LoganConfig,
    Logram, LogramConfig, OnlineParser, ParseOutcome, ShardedDrain, ShardedDrainConfig, Shiso,
    ShisoConfig, Slct, SlctConfig, Spell, SpellConfig,
};
use monilog_loggen::{corpus, TokenKind};
use std::time::Instant;

fn main() {
    println!("=== Parser playground (mini experiment P4/P5) ===\n");
    let corpus = corpus::cloud_mixed(60, 99);
    let messages: Vec<&str> = corpus.messages().collect();
    let truth: Vec<u32> = corpus.logs.iter().map(|l| l.truth.template.0).collect();
    println!(
        "corpus: {} lines, {} true templates\n",
        messages.len(),
        corpus.truth_template_count()
    );
    println!(
        "{:<14} {:>9} {:>10} {:>10} {:>10} {:>12}",
        "parser", "templates", "grouping", "token-acc", "time(ms)", "lines/sec"
    );

    let report = |name: &str,
                  outcomes: &[ParseOutcome],
                  store: &monilog_core::model::TemplateStore,
                  elapsed_ms: f64| {
        let parsed: Vec<u32> = outcomes.iter().map(|o| o.template.0).collect();
        let ga = grouping_accuracy(&parsed, &truth);
        let inputs: Vec<TokenAccuracyInput> = corpus
            .logs
            .iter()
            .zip(outcomes)
            .map(|(log, o)| TokenAccuracyInput {
                tokens: log.record.message.split_whitespace().collect(),
                truth_static: log
                    .truth
                    .token_kinds
                    .iter()
                    .map(|k| *k == TokenKind::Static)
                    .collect(),
                template: store.get(o.template).expect("valid id"),
            })
            .collect();
        let ta = token_accuracy(&inputs);
        println!(
            "{:<14} {:>9} {:>9.1}% {:>9.1}% {:>10.1} {:>12.0}",
            name,
            store.len(),
            ga * 100.0,
            ta * 100.0,
            elapsed_ms,
            messages.len() as f64 / (elapsed_ms / 1_000.0).max(1e-9)
        );
    };

    macro_rules! run_online {
        ($name:expr, $parser:expr) => {{
            let mut p = $parser;
            let start = Instant::now();
            let outcomes = p.parse_all(&messages);
            let ms = start.elapsed().as_secs_f64() * 1_000.0;
            report($name, &outcomes, p.store(), ms);
        }};
    }
    macro_rules! run_batch {
        ($name:expr, $parser:expr) => {{
            let mut p = $parser;
            let start = Instant::now();
            let outcomes = p.parse_batch(&messages);
            let ms = start.elapsed().as_secs_f64() * 1_000.0;
            report($name, &outcomes, p.store(), ms);
        }};
    }

    run_online!("Drain", Drain::new(DrainConfig::default()));
    run_online!("Spell", Spell::new(SpellConfig::default()));
    run_online!("LenMa", LenMa::new(LenMaConfig::default()));
    run_online!("Logan", Logan::new(LoganConfig::default()));
    run_online!("SHISO", Shiso::new(ShisoConfig::default()));
    run_online!("Logram", Logram::new(LogramConfig::default()));
    run_online!(
        "ShardedDrain",
        ShardedDrain::new(ShardedDrainConfig::default())
    );
    run_batch!("IPLoM", IpLoM::new(IpLoMConfig::default()));
    run_batch!("SLCT", Slct::new(SlctConfig::default()));

    println!(
        "\nNote: grouping accuracy is the literature's metric; the token-accuracy \
         column is the paper's Eq. 1 — it drops whenever a parser recovers the \
         right groups but misses variable positions (what quantitative anomaly \
         detection needs)."
    );
}
