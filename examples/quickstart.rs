//! Quickstart: the whole MoniLog pipeline on an HDFS-like workload.
//!
//! Reproduces the paper's running examples end to end:
//! - Fig. 2's parsing step (header + template + variables),
//! - Table I's two anomaly categories (a sequential `L1 → L4`-style flow
//!   deviation and a quantitative absurd-magnitude value),
//! - Fig. 1's three-component pipeline producing classified anomalies.
//!
//! Run with: `cargo run --release -p monilog-core --example quickstart`

use monilog_core::detect::DeepLogConfig;
use monilog_core::model::RawLog;
use monilog_core::{DetectorChoice, MoniLog, MoniLogConfig, WindowPolicy};
use monilog_loggen::{GenLog, HdfsWorkload, HdfsWorkloadConfig};

/// Sequence numbers must stay disjoint across streams (a collector never
/// restarts them); the dedup stage depends on it.
fn to_raw(log: &GenLog, seq_offset: u64) -> RawLog {
    RawLog::new(
        log.record.source,
        log.record.seq + seq_offset,
        log.record.to_line(),
    )
}

fn main() {
    // ── 1. A normal training stream ─────────────────────────────────────
    let training = HdfsWorkload::new(HdfsWorkloadConfig {
        n_sessions: 400,
        sequential_anomaly_rate: 0.0,
        quantitative_anomaly_rate: 0.0,
        seed: 1,
        ..Default::default()
    })
    .generate();

    let mut monilog = MoniLog::new(MoniLogConfig {
        window: WindowPolicy::Session {
            idle_ms: 2_000,
            max_events: 64,
        },
        detector: DetectorChoice::DeepLog(DeepLogConfig {
            history: 6,
            top_g: 2,
            epochs: 3,
            ..DeepLogConfig::default()
        }),
        ..MoniLogConfig::default()
    });

    println!("=== MoniLog quickstart ===\n");
    println!("training on {} normal log lines ...", training.len());
    for log in &training {
        monilog.ingest_training(&to_raw(log, 0));
    }
    monilog.train();

    println!("discovered {} templates, e.g.:", monilog.templates().len());
    for t in monilog.templates().iter().take(4) {
        println!("  {t}");
    }

    // ── 2. A live stream containing anomalies ───────────────────────────
    let live = HdfsWorkload::new(HdfsWorkloadConfig {
        n_sessions: 200,
        sequential_anomaly_rate: 0.04,
        quantitative_anomaly_rate: 0.03,
        seed: 2,
        // An hour after the training stream: clocks move forward.
        start_ms: 1_600_003_600_000,
    })
    .generate();
    let true_anomalous_sessions = HdfsWorkload::sessions(&live)
        .iter()
        .filter(|s| s.anomalous)
        .count();

    println!("\nmonitoring {} live lines ...", live.len());
    let mut anomalies = Vec::new();
    for log in &live {
        anomalies.extend(monilog.ingest(&to_raw(log, 10_000_000)));
    }
    anomalies.extend(monilog.flush());

    // ── 3. The classified-anomaly stream ────────────────────────────────
    println!(
        "\nflagged {} windows ({} truly anomalous sessions in the stream)",
        anomalies.len(),
        true_anomalous_sessions
    );
    for a in anomalies.iter().take(3) {
        println!(
            "\n  [{}] {} anomaly, score {:.1}, pool {}, criticality {}",
            a.report.id, a.report.kind, a.report.score, a.assignment.pool, a.assignment.criticality
        );
        println!("    {}", a.report.explanation);
        for e in a.report.events.iter().take(4) {
            println!("    | {} {}", e.timestamp, e.template);
        }
    }

    println!("\npipeline metrics: {}", monilog.metrics().snapshot());
}
