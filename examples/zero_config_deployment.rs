//! Zero-configuration deployment — the paper's Section IV vision, end to
//! end:
//!
//! "We can imagine a component deployed according to the following flow.
//! First, it acquires a fixed quantity of loglines within its environment.
//! Then it calibrates the value of its parameters by estimating its
//! performance using an unsupervised metric. Once it detects the supposed
//! optimal values, it starts parsing logs."
//!
//! This example drops the parser into an *unknown* system (a 24-source
//! cloud platform it has never seen), calibrates Drain on the first
//! thousand lines with the label-free quality score, then goes live as a
//! standing sharded parse service with backpressure — no human-provided
//! regexes, thresholds or depths anywhere.
//!
//! Run with: `cargo run --release -p monilog-core --example zero_config_deployment`

use monilog_core::parse::autotune::{autotune_drain, TuneGrid};
use monilog_core::parse::eval::grouping_accuracy;
use monilog_core::stream::ShardedParseService;
use monilog_loggen::{CloudWorkload, CloudWorkloadConfig};

fn main() {
    println!("=== Zero-config deployment (Section IV flow) ===\n");
    let logs = CloudWorkload::new(CloudWorkloadConfig {
        walks_per_source: 120,
        seed: 71,
        ..CloudWorkloadConfig::default()
    })
    .generate();
    println!(
        "environment: unknown 24-source platform, {} lines observed",
        logs.len()
    );

    // ── Step 1: acquire a fixed quantity of loglines ─────────────────────
    let calibration_size = 1_000.min(logs.len() / 4);
    let sample: Vec<&str> = logs[..calibration_size]
        .iter()
        .map(|l| l.record.message.as_str())
        .collect();
    println!("step 1: acquired {calibration_size} calibration lines");

    // ── Step 2: calibrate with the unsupervised metric ───────────────────
    let result = autotune_drain(&sample, &TuneGrid::default(), 1_500);
    let config = result.best.config;
    println!(
        "step 2: calibrated — depth={}, similarity={:.1}, masking={} \
         (quality {:.3} over {} grid points, no labels used)",
        config.depth,
        config.sim_threshold,
        if config.mask == monilog_core::parse::MaskConfig::NONE {
            "off"
        } else {
            "on"
        },
        result.best.report.quality,
        result.all.len(),
    );

    // ── Step 3: start parsing logs (standing service, backpressure) ──────
    let live = &logs[calibration_size..];
    let mut service = ShardedParseService::spawn(4, config, 256).expect("valid service config");
    let mut parsed = vec![0u32; live.len()];
    std::thread::scope(|s| {
        let svc = &service;
        s.spawn(move || {
            for (i, log) in live.iter().enumerate() {
                svc.submit(i as u64, log.record.message.clone())
                    .expect("service accepts until closed");
            }
        });
        let mut received = 0;
        while received < live.len() {
            if let Some(item) = svc.recv() {
                parsed[item.seq as usize] = item.outcome.template.0;
                received += 1;
            }
        }
    });
    service.close();
    let (_, shard_templates) = service.shutdown();
    println!(
        "step 3: parsed {} live lines across 4 standing shards \
         (templates per shard: {:?})",
        live.len(),
        shard_templates
    );

    // ── The report card (ground truth known only to the generator) ───────
    let truth: Vec<u32> = live.iter().map(|l| l.truth.template.0).collect();
    let ga = grouping_accuracy(&parsed, &truth);
    println!(
        "\nreport card: grouping accuracy {:.1}% against the generator's hidden \
         ground truth — zero human configuration.",
        ga * 100.0
    );
}
