//! Integration tests: the full MoniLog pipeline across crates.

use monilog_core::detect::DeepLogConfig;
use monilog_core::model::{RawLog, SourceId};
use monilog_core::{DetectorChoice, MoniLog, MoniLogConfig, WindowPolicy};
use monilog_loggen::{GenLog, HdfsWorkload, HdfsWorkloadConfig, NoiseConfig, NoiseInjector};
use monilog_stream::PipelineMetrics;

/// Convert generated logs to raw lines. `seq_offset` keeps sequence
/// numbers disjoint across independently-generated streams — a real
/// collector's sequence numbers never restart, and the pipeline's
/// duplicate suppression rightly relies on that.
fn to_raw(log: &GenLog, seq_offset: u64) -> RawLog {
    RawLog::new(
        log.record.source,
        log.record.seq + seq_offset,
        log.record.to_line(),
    )
}

const LIVE_SEQ: u64 = 10_000_000;
/// Live streams begin an hour after the (default-based) training streams —
/// wall clocks move forward between training and deployment.
const LIVE_START_MS: u64 = 1_600_003_600_000;

fn hdfs_pipeline() -> MoniLog {
    MoniLog::new(MoniLogConfig {
        window: WindowPolicy::Session {
            idle_ms: 2_000,
            max_events: 64,
        },
        detector: DetectorChoice::DeepLog(DeepLogConfig {
            history: 6,
            top_g: 2,
            epochs: 3,
            ..DeepLogConfig::default()
        }),
        ..MoniLogConfig::default()
    })
}

fn train_on_normal(monilog: &mut MoniLog, sessions: usize, seed: u64) {
    let training = HdfsWorkload::new(HdfsWorkloadConfig {
        n_sessions: sessions,
        sequential_anomaly_rate: 0.0,
        quantitative_anomaly_rate: 0.0,
        seed,
        ..Default::default()
    })
    .generate();
    for log in &training {
        monilog.ingest_training(&to_raw(log, 0));
    }
    monilog.train();
}

#[test]
fn pipeline_detects_injected_anomalies_with_high_recall() {
    let mut monilog = hdfs_pipeline();
    train_on_normal(&mut monilog, 250, 31);

    let live = HdfsWorkload::new(HdfsWorkloadConfig {
        n_sessions: 150,
        sequential_anomaly_rate: 0.06,
        quantitative_anomaly_rate: 0.04,
        seed: 32,
        start_ms: LIVE_START_MS,
    })
    .generate();
    let sessions = HdfsWorkload::sessions(&live);
    let anomalous_keys: std::collections::HashSet<&str> = sessions
        .iter()
        .filter(|s| s.anomalous)
        .map(|s| s.key.as_str())
        .collect();
    assert!(!anomalous_keys.is_empty(), "test stream has no anomalies");

    let mut anomalies = Vec::new();
    for log in &live {
        anomalies.extend(monilog.ingest(&to_raw(log, LIVE_SEQ)));
    }
    anomalies.extend(monilog.flush());

    // Which flagged windows correspond to truly anomalous sessions? The
    // session key is one of the report's event variables.
    let mut hit_keys = std::collections::HashSet::new();
    let mut false_alarms = 0;
    for a in &anomalies {
        let keys: std::collections::HashSet<&str> = a
            .report
            .events
            .iter()
            .filter_map(|e| e.session.as_ref())
            .map(|s| s.0.as_str())
            .collect();
        let mut hit = false;
        for k in keys {
            if anomalous_keys.contains(k) {
                hit_keys.insert(k.to_string());
                hit = true;
            }
        }
        if !hit {
            false_alarms += 1;
        }
    }
    let recall = hit_keys.len() as f64 / anomalous_keys.len() as f64;
    assert!(
        recall >= 0.6,
        "recall {recall} too low ({}/{})",
        hit_keys.len(),
        anomalous_keys.len()
    );
    let precision = 1.0 - false_alarms as f64 / anomalies.len().max(1) as f64;
    assert!(
        precision >= 0.5,
        "precision {precision} too low ({false_alarms} false alarms of {})",
        anomalies.len()
    );
}

#[test]
fn clean_stream_produces_few_false_alarms() {
    let mut monilog = hdfs_pipeline();
    train_on_normal(&mut monilog, 250, 41);

    let live = HdfsWorkload::new(HdfsWorkloadConfig {
        n_sessions: 120,
        sequential_anomaly_rate: 0.0,
        quantitative_anomaly_rate: 0.0,
        seed: 42,
        start_ms: LIVE_START_MS,
    })
    .generate();
    let mut anomalies = Vec::new();
    for log in &live {
        anomalies.extend(monilog.ingest(&to_raw(log, LIVE_SEQ)));
    }
    anomalies.extend(monilog.flush());
    let rate = anomalies.len() as f64 / 120.0;
    assert!(rate < 0.10, "false-alarm rate {rate} on a clean stream");
}

#[test]
fn transport_noise_is_absorbed() {
    // Duplicated and re-ordered delivery must not change what the pipeline
    // detects (dedup + reorder buffer at work).
    let mut monilog = hdfs_pipeline();
    train_on_normal(&mut monilog, 250, 51);

    let live = HdfsWorkload::new(HdfsWorkloadConfig {
        n_sessions: 100,
        sequential_anomaly_rate: 0.0,
        quantitative_anomaly_rate: 0.0,
        seed: 52,
        start_ms: LIVE_START_MS,
    })
    .generate();
    let noisy = NoiseInjector::new(NoiseConfig {
        max_delay_ms: 300,
        duplicate_prob: 0.10,
        drop_prob: 0.0,
        seed: 53,
    })
    .apply(&live);
    assert!(noisy.len() > live.len(), "duplicates exist");

    let mut anomalies = Vec::new();
    for log in &noisy {
        anomalies.extend(monilog.ingest(&to_raw(log, LIVE_SEQ)));
    }
    anomalies.extend(monilog.flush());

    let metrics = monilog.metrics();
    assert_eq!(
        PipelineMetrics::get(&metrics.duplicates_dropped) as usize,
        noisy.len() - live.len(),
        "every duplicate dropped exactly once"
    );
    let rate = anomalies.len() as f64 / 100.0;
    assert!(rate < 0.12, "noise alone caused {rate} false alarms");
}

#[test]
fn metrics_are_consistent() {
    let mut monilog = hdfs_pipeline();
    train_on_normal(&mut monilog, 60, 61);
    let live = HdfsWorkload::new(HdfsWorkloadConfig {
        n_sessions: 30,
        sequential_anomaly_rate: 0.05,
        quantitative_anomaly_rate: 0.0,
        seed: 62,
        start_ms: LIVE_START_MS,
    })
    .generate();
    for log in &live {
        monilog.ingest(&to_raw(log, LIVE_SEQ));
    }
    monilog.flush();
    let m = monilog.metrics();
    let ingested = PipelineMetrics::get(&m.lines_ingested);
    let parsed = PipelineMetrics::get(&m.lines_parsed);
    let dropped = PipelineMetrics::get(&m.duplicates_dropped);
    let errors = PipelineMetrics::get(&m.header_errors);
    assert_eq!(parsed + dropped + errors, ingested);
    assert_eq!(errors, 0);
    assert!(PipelineMetrics::get(&m.templates_discovered) >= 5);
}

#[test]
fn malformed_lines_are_counted_not_fatal() {
    let mut monilog = hdfs_pipeline();
    // Train normally, then feed garbage.
    train_on_normal(&mut monilog, 60, 71);
    for (i, junk) in ["", "not a log line", "2020-99-99 99:99:99,999 - x - y - z"]
        .iter()
        .enumerate()
    {
        let out = monilog.ingest(&RawLog::new(SourceId(9), i as u64, *junk));
        assert!(out.is_empty());
    }
    assert_eq!(PipelineMetrics::get(&monilog.metrics().header_errors), 3);
}

#[test]
fn classifier_feedback_loop_routes_future_anomalies() {
    use monilog_core::classify::PoolRegistry;

    let mut monilog = hdfs_pipeline();
    train_on_normal(&mut monilog, 200, 81);
    let live = HdfsWorkload::new(HdfsWorkloadConfig {
        n_sessions: 200,
        sequential_anomaly_rate: 0.10,
        quantitative_anomaly_rate: 0.0,
        seed: 82,
        start_ms: LIVE_START_MS,
    })
    .generate();
    let mut anomalies = Vec::new();
    for log in &live {
        anomalies.extend(monilog.ingest(&to_raw(log, LIVE_SEQ)));
    }
    anomalies.extend(monilog.flush());
    assert!(
        anomalies.len() >= 6,
        "need anomalies to exercise feedback, got {}",
        anomalies.len()
    );

    let ops = monilog.classifier_mut().create_pool("hdfs-ops");
    // Cold start: everything goes to the default pool.
    assert!(anomalies
        .iter()
        .all(|a| a.assignment.pool == PoolRegistry::DEFAULT));
    // The admin moves the first half to hdfs-ops...
    let half = anomalies.len() / 2;
    for a in &anomalies[..half] {
        monilog.feedback_move(a, ops);
    }
    // ...after which similar anomalies are routed there automatically.
    let routed = anomalies[half..]
        .iter()
        .filter(|a| monilog.classifier_mut().classify(&a.report).pool == ops)
        .count();
    assert!(
        routed as f64 / (anomalies.len() - half) as f64 > 0.7,
        "only {routed}/{} routed after feedback",
        anomalies.len() - half
    );
}

#[test]
fn template_ids_survive_restart() {
    // Train, persist the template store, "restart" into a warm pipeline:
    // the same lines must map to the same template ids (a checkpointed
    // detector depends on it).
    let mut first = hdfs_pipeline();
    train_on_normal(&mut first, 80, 91);
    let live = HdfsWorkload::new(HdfsWorkloadConfig {
        n_sessions: 40,
        sequential_anomaly_rate: 0.0,
        quantitative_anomaly_rate: 0.0,
        seed: 92,
        start_ms: LIVE_START_MS,
        ..Default::default()
    })
    .generate();
    for log in &live {
        first.ingest(&to_raw(log, LIVE_SEQ));
    }
    first.flush();
    let bytes = first.templates().encode();

    let store = monilog_core::model::TemplateStore::decode(&bytes).expect("round trip");
    let restarted = monilog_core::MoniLog::with_warm_templates(
        monilog_core::MoniLogConfig {
            window: monilog_core::WindowPolicy::Session {
                idle_ms: 2_000,
                max_events: 64,
            },
            ..monilog_core::MoniLogConfig::default()
        },
        store,
    );
    // Compare template assignment line by line via the underlying stores:
    // every template known to the first pipeline resolves identically.
    for template in first.templates().iter() {
        let found = restarted
            .templates()
            .find_by_pattern(&template.render())
            .expect("template survived restart");
        assert_eq!(found, template.id);
    }
}

#[test]
fn pipeline_checkpoint_restores_detection_behaviour() {
    // Train → checkpoint → restore in a "new process" → the restored
    // pipeline detects the same anomalies on the same live stream.
    let mut original = hdfs_pipeline();
    train_on_normal(&mut original, 150, 95);
    let blob = original.checkpoint().expect("DeepLog pipeline checkpoints");

    let restored_config = monilog_core::MoniLogConfig {
        window: monilog_core::WindowPolicy::Session {
            idle_ms: 2_000,
            max_events: 64,
        },
        detector: monilog_core::DetectorChoice::DeepLog(monilog_core::detect::DeepLogConfig {
            history: 6,
            top_g: 2,
            epochs: 3,
            ..monilog_core::detect::DeepLogConfig::default()
        }),
        ..monilog_core::MoniLogConfig::default()
    };
    let mut restored =
        monilog_core::MoniLog::restore(restored_config, &blob).expect("valid checkpoint");
    assert!(restored.is_trained(), "restored pipeline skips retraining");

    let live = HdfsWorkload::new(HdfsWorkloadConfig {
        n_sessions: 80,
        sequential_anomaly_rate: 0.08,
        quantitative_anomaly_rate: 0.04,
        seed: 96,
        start_ms: LIVE_START_MS,
        ..Default::default()
    })
    .generate();

    let run = |pipeline: &mut monilog_core::MoniLog| -> Vec<u64> {
        let mut flagged = Vec::new();
        for log in &live {
            for a in pipeline.ingest(&to_raw(log, LIVE_SEQ)) {
                flagged.push(a.report.events[0].timestamp.as_millis());
            }
        }
        for a in pipeline.flush() {
            flagged.push(a.report.events[0].timestamp.as_millis());
        }
        flagged.sort_unstable();
        flagged
    };
    let from_original = run(&mut original);
    let from_restored = run(&mut restored);
    assert_eq!(
        from_original, from_restored,
        "restored pipeline flags different windows"
    );
    assert!(
        !from_restored.is_empty(),
        "stream contains anomalies to find"
    );

    // Corrupt blobs are rejected, not misinterpreted.
    let mut bad = blob.clone();
    bad.truncate(bad.len() / 2);
    assert!(monilog_core::MoniLog::restore(restored_config, &bad).is_err());
}

#[test]
fn anomaly_provenance_resolves_over_http() {
    use monilog_core::ObservabilityConfig;
    use monilog_stream::MetricsExporter;
    use std::io::{Read as _, Write as _};

    // Sample every line so the flagged window's events all carry traces.
    let mut monilog = MoniLog::new(MoniLogConfig {
        window: WindowPolicy::Session {
            idle_ms: 2_000,
            max_events: 64,
        },
        detector: DetectorChoice::DeepLog(DeepLogConfig {
            history: 6,
            top_g: 2,
            epochs: 3,
            ..DeepLogConfig::default()
        }),
        observability: ObservabilityConfig {
            trace_sample_rate: 1,
            ..ObservabilityConfig::default()
        },
        ..MoniLogConfig::default()
    });
    train_on_normal(&mut monilog, 120, 42);

    let live = HdfsWorkload::new(HdfsWorkloadConfig {
        n_sessions: 40,
        sequential_anomaly_rate: 0.2,
        quantitative_anomaly_rate: 0.0,
        seed: 43,
        start_ms: LIVE_START_MS,
        ..Default::default()
    })
    .generate();
    let mut anomalies = Vec::new();
    for log in &live {
        anomalies.extend(monilog.ingest(&to_raw(log, LIVE_SEQ)));
    }
    anomalies.extend(monilog.flush());
    assert!(!anomalies.is_empty(), "anomalous live stream must flag");

    let report = &anomalies[0].report;
    assert!(
        !report.provenance.trace_ids.is_empty(),
        "sample-everything run must attribute traces"
    );
    let json = report.to_json();
    assert!(json.contains("\"provenance\":{"), "{json}");

    // Serve the tracer and resolve every provenance trace id over HTTP.
    let exporter = MetricsExporter::spawn_with_tracer(
        "127.0.0.1:0".parse().unwrap(),
        monilog.registry(),
        std::time::Duration::from_millis(20),
        Some(monilog.tracer()),
    )
    .expect("exporter binds");
    let addr = exporter.local_addr();
    let fetch = |path: &str| -> String {
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
            .expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        response
    };
    for trace in &report.provenance.trace_ids {
        let response = fetch(&format!("/trace/{}", trace.0));
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        let body = response.split("\r\n\r\n").nth(1).unwrap_or_default();
        assert!(
            body.starts_with(&format!("{{\"trace_id\":{}", trace.0)),
            "{body}"
        );
        assert!(body.contains("\"stage\":\"parse_exec\""), "{body}");
    }
    let response = fetch("/flight");
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    assert!(response.contains("\"sample_rate\":1"), "{response}");
}
