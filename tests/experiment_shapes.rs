//! Small-scale assertions of the experiment *shapes* claimed in DESIGN.md.
//!
//! The full experiments live in `crates/bench`; these tests pin the
//! qualitative findings at CI-friendly scale so a regression in any
//! component that would flip an experiment's conclusion fails fast.

use monilog_core::detect::window::session_windows;
use monilog_core::detect::{
    evaluate, DeepLog, DeepLogConfig, Detector, LogAnomaly, LogAnomalyConfig, LogRobust,
    LogRobustConfig, PcaDetector, PcaDetectorConfig, TrainSet, Window,
};
use monilog_core::model::event::parse_numeric;
use monilog_core::parse::eval::{grouping_accuracy, token_accuracy, TokenAccuracyInput};
use monilog_core::parse::{Drain, DrainConfig, MaskConfig, OnlineParser};
use monilog_loggen::{
    corpus, GenLog, HdfsWorkload, HdfsWorkloadConfig, InstabilityConfig, InstabilityInjector,
    TokenKind,
};

/// Parse logs with a shared Drain and split into labeled session windows.
fn parse_sessions(parser: &mut Drain, logs: &[GenLog]) -> (Vec<Window>, Vec<bool>) {
    let mut labels_by_key: std::collections::HashMap<String, bool> = Default::default();
    for log in logs {
        let key = log.truth.session.clone().expect("session workload");
        *labels_by_key.entry(key).or_insert(false) |= log.truth.is_anomalous();
    }
    let events = logs.iter().map(|log| {
        let outcome = parser.parse(&log.record.message);
        let numerics: Vec<f64> = outcome
            .variables
            .iter()
            .filter_map(|v| parse_numeric(v))
            .collect();
        (
            log.truth.session.clone().expect("session workload"),
            outcome.template.0,
            numerics,
        )
    });
    let mut windows = Vec::new();
    let mut labels = Vec::new();
    for (key, w) in session_windows(events) {
        windows.push(w);
        labels.push(labels_by_key[&key]);
    }
    (windows, labels)
}

fn small_deeplog() -> DeepLog {
    DeepLog::new(DeepLogConfig {
        history: 6,
        top_g: 2,
        epochs: 3,
        ..DeepLogConfig::default()
    })
}

fn small_loganomaly() -> LogAnomaly {
    LogAnomaly::new(LogAnomalyConfig {
        history: 6,
        top_g: 2,
        epochs: 3,
        ..LogAnomalyConfig::default()
    })
}

/// P1 shape: trained anomaly-free, DeepLog and LogAnomaly detect well;
/// LogRobust (supervised) collapses to zero recall.
#[test]
fn p1_anomaly_free_training_shape() {
    let train_logs = HdfsWorkload::new(HdfsWorkloadConfig {
        n_sessions: 250,
        sequential_anomaly_rate: 0.0,
        quantitative_anomaly_rate: 0.0,
        seed: 1,
        ..Default::default()
    })
    .generate();
    let test_logs = HdfsWorkload::new(HdfsWorkloadConfig {
        n_sessions: 150,
        sequential_anomaly_rate: 0.08,
        quantitative_anomaly_rate: 0.04,
        seed: 2,
        ..Default::default()
    })
    .generate();

    let mut parser = Drain::new(DrainConfig::default());
    let (train_windows, _) = parse_sessions(&mut parser, &train_logs);
    let (test_windows, test_labels) = parse_sessions(&mut parser, &test_logs);
    let train = TrainSet::unlabeled(train_windows).with_templates(parser.store().clone());

    let mut deeplog = small_deeplog();
    deeplog.fit(&train);
    let dl = evaluate(&deeplog, &test_windows, &test_labels);
    assert!(dl.f1 > 0.6, "DeepLog F1 {:.3} too low", dl.f1);

    let mut loganomaly = small_loganomaly();
    loganomaly.fit(&train);
    let la = evaluate(&loganomaly, &test_windows, &test_labels);
    assert!(la.f1 > 0.5, "LogAnomaly F1 {:.3} too low", la.f1);

    let mut logrobust = LogRobust::new(LogRobustConfig::default());
    logrobust.fit(&train);
    assert!(logrobust.is_degraded());
    let lr = evaluate(&logrobust, &test_windows, &test_labels);
    assert_eq!(
        lr.recall, 0.0,
        "supervised model can't recall without labels"
    );
    assert!(lr.f1 < dl.f1 && lr.f1 < la.f1, "P1 ordering violated");
}

/// X1/P2 shape: under log instability, DeepLog degrades (false alarms on
/// evolved-but-normal logs) more than LogAnomaly.
#[test]
fn x1_instability_hurts_deeplog_more_than_loganomaly() {
    let stable = HdfsWorkload::new(HdfsWorkloadConfig {
        n_sessions: 250,
        sequential_anomaly_rate: 0.0,
        quantitative_anomaly_rate: 0.0,
        seed: 3,
        ..Default::default()
    })
    .generate();
    let fresh = HdfsWorkload::new(HdfsWorkloadConfig {
        n_sessions: 120,
        sequential_anomaly_rate: 0.0,
        quantitative_anomaly_rate: 0.0,
        seed: 4,
        ..Default::default()
    })
    .generate();
    // A high twist ratio forces the (whole-template) twist budget onto
    // common statements, so nearly every session contains evolved lines —
    // the deterministic version of a big deploy.
    let evolved = InstabilityInjector::new(InstabilityConfig {
        ratio: 0.6,
        kinds: vec![monilog_loggen::InstabilityKind::TwistStatement],
        seed: 5,
    })
    .apply(&fresh);

    let mut parser = Drain::new(DrainConfig::default());
    let (train_windows, _) = parse_sessions(&mut parser, &stable);
    let train = TrainSet::unlabeled(train_windows).with_templates(parser.store().clone());

    let mut deeplog = small_deeplog();
    deeplog.fit(&train);
    let mut loganomaly = small_loganomaly();
    loganomaly.fit(&train);

    let (evolved_windows, _) = parse_sessions(&mut parser, &evolved);
    deeplog.update_templates(parser.store());
    loganomaly.update_templates(parser.store());

    let far = |d: &dyn Detector| {
        evolved_windows.iter().filter(|w| d.predict(w)).count() as f64
            / evolved_windows.len() as f64
    };
    let deeplog_far = far(&deeplog);
    let loganomaly_far = far(&loganomaly);
    assert!(
        deeplog_far > loganomaly_far,
        "instability shape violated: DeepLog {deeplog_far:.3} vs LogAnomaly {loganomaly_far:.3}"
    );
    assert!(
        deeplog_far > 0.2,
        "a big deploy should trip DeepLog's closed world: {deeplog_far}"
    );
}

/// P3 shape: on an unkeyed multi-source mixed stream (tumbling windows),
/// the order-invariant counter method stays useful while the sequence
/// model loses its edge (mixed flows destroy order information).
#[test]
fn p3_multisource_counts_stay_competitive() {
    use monilog_core::detect::window::tumbling_windows;
    use monilog_loggen::{CloudWorkload, CloudWorkloadConfig};

    let train_logs = CloudWorkload::new(CloudWorkloadConfig {
        n_sources: 8,
        walks_per_source: 150,
        json_tail: false,
        seed: 6,
        ..CloudWorkloadConfig::default()
    })
    .generate();
    let test_logs = CloudWorkload::new(CloudWorkloadConfig {
        n_sources: 8,
        walks_per_source: 60,
        json_tail: false,
        n_incidents: 8,
        seed: 7,
        ..CloudWorkloadConfig::default()
    })
    .generate();

    let mut parser = Drain::new(DrainConfig::default());
    let to_windows = |parser: &mut Drain, logs: &[GenLog]| -> (Vec<Window>, Vec<bool>) {
        let mut ids = Vec::new();
        let mut nums = Vec::new();
        let mut marks = Vec::new();
        for log in logs {
            let o = parser.parse(&log.record.message);
            ids.push(o.template.0);
            nums.push(
                o.variables
                    .iter()
                    .filter_map(|v| parse_numeric(v))
                    .collect::<Vec<f64>>(),
            );
            marks.push(log.truth.is_anomalous());
        }
        let windows = tumbling_windows(&ids, &nums, 40);
        // A window is anomalous iff it contains ≥ 3 incident lines.
        let labels: Vec<bool> = windows
            .iter()
            .scan(0usize, |offset, w| {
                let start = *offset;
                *offset += w.len();
                Some(marks[start..start + w.len()].iter().filter(|&&m| m).count() >= 3)
            })
            .collect();
        (windows, labels)
    };

    let (train_windows, _) = to_windows(&mut parser, &train_logs);
    let (test_windows, test_labels) = to_windows(&mut parser, &test_logs);
    assert!(
        test_labels.iter().any(|&l| l),
        "incidents must label some windows"
    );
    let train = TrainSet::unlabeled(train_windows).with_templates(parser.store().clone());

    let mut pca = PcaDetector::new(PcaDetectorConfig::default());
    pca.fit(&train);
    let pca_scores = evaluate(&pca, &test_windows, &test_labels);
    // The counter method catches incident bursts in mixed streams.
    assert!(
        pca_scores.recall > 0.5,
        "PCA recall {:.3} on multi-source incidents",
        pca_scores.recall
    );
}

/// P5 shape: token accuracy (Eq. 1) is at most grouping accuracy on the
/// same run and strictly drops when masking is disabled (variables kept
/// literal), even where grouping survives.
#[test]
fn p5_token_metric_shape() {
    let corpus = corpus::hdfs_like(120, 8);
    let truth_ids: Vec<u32> = corpus.logs.iter().map(|l| l.truth.template.0).collect();

    let run = |mask: MaskConfig| -> (f64, f64) {
        let mut parser = Drain::new(DrainConfig {
            mask,
            ..DrainConfig::default()
        });
        let outcomes: Vec<_> = corpus
            .logs
            .iter()
            .map(|l| parser.parse(&l.record.message))
            .collect();
        let parsed: Vec<u32> = outcomes.iter().map(|o| o.template.0).collect();
        let ga = grouping_accuracy(&parsed, &truth_ids);
        let inputs: Vec<TokenAccuracyInput> = corpus
            .logs
            .iter()
            .zip(&outcomes)
            .map(|(log, o)| TokenAccuracyInput {
                tokens: log.record.message.split_whitespace().collect(),
                truth_static: log
                    .truth
                    .token_kinds
                    .iter()
                    .map(|k| *k == TokenKind::Static)
                    .collect(),
                template: parser.store().get(o.template).expect("valid"),
            })
            .collect();
        (ga, token_accuracy(&inputs))
    };

    let (ga_masked, ta_masked) = run(MaskConfig::STANDARD);
    assert!(ga_masked > 0.9, "masked GA {ga_masked}");
    assert!(ta_masked > 0.9, "masked token accuracy {ta_masked}");

    let (_, ta_unmasked) = run(MaskConfig::NONE);
    assert!(
        ta_unmasked < ta_masked,
        "removing masks must hurt variable extraction: {ta_unmasked} vs {ta_masked}"
    );
}

/// P6 shape: label-free calibration transfers — regret against the
/// supervised-best grid point stays small on held-out data.
#[test]
fn p6_autotune_low_regret_shape() {
    use monilog_core::parse::autotune::{autotune_drain, TuneGrid};
    use monilog_core::parse::eval::pairwise_scores;

    let corpus = corpus::cloud_mixed(40, 1401);
    let messages: Vec<&str> = corpus.messages().collect();
    let truth: Vec<u32> = corpus.logs.iter().map(|l| l.truth.template.0).collect();
    let split = messages.len() / 3;

    let result = autotune_drain(&messages[..split], &TuneGrid::default(), 800);
    let f1_of = |config| {
        let mut p = Drain::new(config);
        let parsed: Vec<u32> = messages[split..]
            .iter()
            .map(|m| p.parse(m).template.0)
            .collect();
        pairwise_scores(&parsed, &truth[split..]).f1
    };
    let tuned = f1_of(result.best.config);
    let best = result
        .all
        .iter()
        .map(|pt| f1_of(pt.config))
        .fold(f64::MIN, f64::max);
    assert!(
        best - tuned < 0.05,
        "autotune regret too high: tuned {tuned:.3} vs best {best:.3}"
    );
    assert!(tuned > 0.9, "tuned configuration parses poorly: {tuned:.3}");
}

/// D2 shape: the passive classifier beats its cold-start baseline after a
/// modest number of feedback signals.
#[test]
fn d2_classifier_learns_from_passive_feedback() {
    use monilog_core::classify::{AdminPolicy, AdminSimulator, AnomalyClassifier, PoolRegistry};
    use monilog_core::model::{
        AnomalyKind, AnomalyReport, EventId, LogEvent, Severity, SourceId, TemplateId, Timestamp,
    };

    let report = |id: u64, source: u16, kind: AnomalyKind| -> AnomalyReport {
        let events = (0..5)
            .map(|i| {
                LogEvent::new(
                    EventId(id * 10 + i),
                    Timestamp::from_millis(id * 1_000 + i * 40),
                    SourceId(source),
                    Severity::Warning,
                    TemplateId(source as u32 * 8 + (i % 3) as u32),
                    vec![],
                    None,
                )
            })
            .collect();
        AnomalyReport {
            id,
            kind,
            score: 2.0,
            detector: "t".into(),
            events,
            explanation: String::new(),
            provenance: Default::default(),
        }
    };

    let mut classifier = AnomalyClassifier::new();
    let net = classifier.create_pool("network");
    let sto = classifier.create_pool("storage");
    let policy = AdminPolicy {
        source_pools: vec![(0, 3, net), (4, 7, sto)],
        quantitative_pool: None,
        default_pool: PoolRegistry::DEFAULT,
        noise: 0.0,
    };
    let mut admin = AdminSimulator::new(policy.clone(), 1);
    let pools = [net, sto];

    // Cold start: everything lands in the default pool → 0% accuracy
    // against a policy that never uses it.
    let probe: Vec<AnomalyReport> = (0..40)
        .map(|i| report(10_000 + i, (i % 8) as u16, AnomalyKind::Sequential))
        .collect();
    let accuracy = |c: &AnomalyClassifier| {
        probe
            .iter()
            .filter(|r| c.classify(r).pool == policy.true_pool(r))
            .count() as f64
            / probe.len() as f64
    };
    assert_eq!(accuracy(&classifier), 0.0);

    for i in 0..120u64 {
        let r = report(i, (i % 8) as u16, AnomalyKind::Sequential);
        let (pool, _) = admin.act(&r, &pools);
        classifier.observe_move(&r, pool);
    }
    let learned = accuracy(&classifier);
    assert!(
        learned > 0.8,
        "classifier only reached {learned} after 120 signals"
    );
}
