//! Chaos integration suite: the supervised parse service under injected
//! faults, driven through the `monilog-core` facade configuration.
//!
//! The contract under test (ISSUE acceptance):
//! - no fault plan may deadlock the service (every test terminating is
//!   the assertion);
//! - at least `N - quarantined` lines come out parsed — faults cost at
//!   most the poisoned lines plus one in-flight line per worker crash;
//! - template ids are bit-identical to a fault-free run across respawns;
//! - the fault-tolerance counters match the fault plan *exactly*, not
//!   just approximately;
//! - the `ShedToCatchAll` and `DeadLetter` overload policies degrade
//!   gracefully under saturation while `Block` preserves backpressure.

use monilog_core::stream::PipelineMetrics;
use monilog_core::stream::{
    FailureReason, FaultPlan, OverloadPolicy, SubmitOutcome, SupervisedParseService,
    SupervisorConfig,
};
use monilog_core::{FaultToleranceConfig, MoniLogConfig};
use monilog_loggen::{HdfsWorkload, HdfsWorkloadConfig};
use std::collections::BTreeMap;
use std::sync::atomic::AtomicU64;
use std::time::{Duration, Instant};

/// Realistic message corpus: HDFS-like session logs, payload text only.
fn corpus(n: usize, seed: u64) -> Vec<String> {
    let logs = HdfsWorkload::new(HdfsWorkloadConfig {
        n_sessions: n, // sessions are multi-line; this overshoots, then truncates
        sequential_anomaly_rate: 0.0,
        quantitative_anomaly_rate: 0.0,
        seed,
        ..Default::default()
    })
    .generate();
    logs.iter()
        .take(n)
        .map(|l| l.record.message.to_string())
        .collect()
}

/// The facade's fault-tolerance knobs mapped down to a supervisor config,
/// then tightened for fast tests (short heartbeats, microsecond backoff).
fn test_config(fault: FaultToleranceConfig) -> SupervisorConfig {
    let mut cfg = MoniLogConfig {
        fault_tolerance: fault,
        ..Default::default()
    }
    .supervisor_config();
    cfg.n_shards = 2;
    cfg.capacity = 64;
    cfg.heartbeat_interval = Duration::from_millis(5);
    cfg.retry.base_backoff = Duration::from_micros(100);
    cfg.retry.max_backoff = Duration::from_millis(1);
    cfg
}

fn get(counter: &AtomicU64) -> u64 {
    PipelineMetrics::get(counter)
}

/// Feed every line and concurrently drain the output until it has been
/// idle for a while (faults stall the stream for at most a few heartbeat
/// intervals, far below the cutoff).
fn pump(service: &SupervisedParseService, lines: &[String]) -> Vec<(u64, u32)> {
    pump_with_stall(service, lines, None)
}

/// Like [`pump`], but the consumer freezes for 150 ms after receiving
/// `stall_after` items — long enough for backpressure to wedge the whole
/// pipeline against the stalled output queue before it resumes.
fn pump_with_stall(
    service: &SupervisedParseService,
    lines: &[String],
    mut stall_after: Option<usize>,
) -> Vec<(u64, u32)> {
    std::thread::scope(|s| {
        s.spawn(|| {
            for (i, line) in lines.iter().enumerate() {
                service
                    .submit(i as u64, line.clone())
                    .expect("service is open");
            }
        });
        let mut out = Vec::new();
        let mut last = Instant::now();
        loop {
            match service.try_recv() {
                Some(item) => {
                    out.push((item.seq, item.outcome.template.0));
                    last = Instant::now();
                    if stall_after.take_if(|n| *n == out.len()).is_some() {
                        std::thread::sleep(Duration::from_millis(150));
                        last = Instant::now();
                    }
                }
                None => {
                    if last.elapsed() > Duration::from_millis(800) {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        }
        out
    })
}

#[test]
fn chaos_run_recovers_and_matches_fault_free_template_ids() {
    let lines = corpus(240, 97);
    let n = lines.len() as u64;

    // Fault-free baseline: record the template id of every sequence
    // number, and where template discovery ends.
    let fault_cfg = FaultToleranceConfig::default();
    let mut baseline_svc =
        SupervisedParseService::spawn(test_config(fault_cfg)).expect("valid config");
    let baseline_out = pump(&baseline_svc, &lines);
    let metrics = baseline_svc.metrics();
    baseline_svc.close();
    let (rest, letters) = baseline_svc.shutdown();
    assert!(rest.is_empty(), "pump drained everything");
    assert!(letters.is_empty(), "no faults, no dead letters");
    assert_eq!(get(&metrics.lines_parsed), n);
    assert_eq!(get(&metrics.worker_restarts), 0);
    assert_eq!(get(&metrics.lines_quarantined), 0);
    let baseline: BTreeMap<u64, u32> = baseline_out.iter().copied().collect();
    assert_eq!(baseline.len() as u64, n);

    // The fault plan targets sequence numbers past template discovery so
    // a lost line can never be a template's first sighting (id stability
    // across a lost *discovery* line is not a property anyone can offer).
    let plan = FaultPlan::new()
        .crash_every(100) // kills the worker handling seqs 99 and 199
        .poison([120, 130]) // panics on every attempt -> quarantined
        .transient([140, 150, 160]); // panics once -> rescued by retry
    assert_eq!(plan.expected_crashes(n), 2);
    assert_eq!(plan.expected_poisoned(n), 2);

    // The chaos run also stalls the consumer for 150 ms mid-stream:
    // backpressure wedges every queue against the stalled output, and the
    // supervisor must neither kill the (blocked, healthy) workers nor
    // deadlock when consumption resumes.
    let mut chaos_svc =
        SupervisedParseService::spawn_with_injector(test_config(fault_cfg), Some(plan.injector()))
            .expect("valid config");
    let chaos_out = pump_with_stall(&chaos_svc, &lines, Some(60));
    let metrics = chaos_svc.metrics();
    let status = chaos_svc.shard_status();
    chaos_svc.close();
    let (rest, mut letters) = chaos_svc.shutdown();
    assert!(rest.is_empty(), "pump drained everything");

    // Losses are exactly the poisoned lines plus the one line in flight
    // at each worker kill — nothing else.
    letters.sort_by_key(|l| l.seq);
    let lost: Vec<u64> = letters.iter().map(|l| l.seq).collect();
    assert_eq!(lost, vec![99, 120, 130, 199]);
    assert_eq!(chaos_out.len() as u64, n - 4, "received >= N - quarantined");

    // Template ids survive the respawns bit-for-bit.
    for &(seq, template) in &chaos_out {
        assert_eq!(
            template, baseline[&seq],
            "template id for seq {seq} drifted across a worker respawn"
        );
    }

    // Counters match the plan exactly.
    assert_eq!(get(&metrics.lines_ingested), n);
    assert_eq!(get(&metrics.lines_parsed), n - 4);
    assert_eq!(get(&metrics.worker_restarts), plan.expected_crashes(n));
    assert_eq!(
        get(&metrics.lines_quarantined),
        plan.expected_crashes(n) + plan.expected_poisoned(n)
    );
    // Poison lines retry max_retries times before quarantine; transient
    // lines are rescued by their single retry.
    let retry = test_config(fault_cfg).retry;
    assert_eq!(
        get(&metrics.retries_attempted),
        2 * u64::from(retry.max_retries) + 3
    );
    assert_eq!(get(&metrics.lines_shed), 0);

    // Dead letters carry triage context.
    for letter in &letters {
        match letter.seq {
            120 | 130 => {
                assert_eq!(letter.reason, FailureReason::Panic);
                assert_eq!(letter.attempts, retry.max_retries + 1);
                assert!(letter.shard.is_some());
            }
            _ => {
                assert_eq!(letter.reason, FailureReason::WorkerCrash);
                assert!(letter.shard.is_some());
            }
        }
        assert_eq!(letter.line, lines[letter.seq as usize]);
    }

    // Isolated crashes never exhaust the crash budget.
    assert!(
        status.iter().all(|s| !s.degraded),
        "no shard degraded: {status:?}"
    );
}

#[test]
fn facade_shed_policy_degrades_gracefully_under_saturation() {
    let lines = corpus(200, 11);
    let fault = FaultToleranceConfig {
        on_overload: OverloadPolicy::ShedToCatchAll,
        ..Default::default()
    };
    let mut cfg = test_config(fault);
    cfg.n_shards = 1;
    cfg.capacity = 2;
    let mut service = SupervisedParseService::spawn(cfg).expect("valid config");

    // Nobody consumes the output, so the tiny queues saturate at once.
    let mut shed = 0u64;
    for (i, line) in lines.iter().enumerate() {
        if service.submit(i as u64, line.clone()).expect("open") == SubmitOutcome::Shed {
            shed += 1;
        }
    }
    assert!(
        shed > 0,
        "saturation must shed with capacity 2 and no consumer"
    );

    let metrics = service.metrics();
    assert_eq!(get(&metrics.lines_shed), shed);
    assert_eq!(service.catch_all_count(), shed);
    // `lines_ingested` counts lines *accepted* into the pipeline — shed
    // lines never enter it.
    assert_eq!(get(&metrics.lines_ingested), lines.len() as u64 - shed);

    // Every accepted line still comes out parsed at shutdown.
    service.close();
    let (rest, letters) = service.shutdown();
    assert!(letters.is_empty(), "shedding never dead-letters");
    assert_eq!(rest.len() as u64, lines.len() as u64 - shed);
}

#[test]
fn facade_dead_letter_policy_diverts_under_saturation() {
    let lines = corpus(200, 12);
    let fault = FaultToleranceConfig {
        on_overload: OverloadPolicy::DeadLetter,
        ..Default::default()
    };
    let mut cfg = test_config(fault);
    cfg.n_shards = 1;
    cfg.capacity = 2;
    let mut service = SupervisedParseService::spawn(cfg).expect("valid config");

    let mut diverted = 0u64;
    for (i, line) in lines.iter().enumerate() {
        if service.submit(i as u64, line.clone()).expect("open") == SubmitOutcome::DeadLettered {
            diverted += 1;
        }
    }
    assert!(
        diverted > 0,
        "saturation must divert with capacity 2 and no consumer"
    );
    assert_eq!(get(&service.metrics().lines_quarantined), diverted);

    service.close();
    let (rest, letters) = service.shutdown();
    assert_eq!(letters.len() as u64, diverted);
    assert!(letters.iter().all(|l| l.reason == FailureReason::Overload));
    assert!(
        letters.iter().all(|l| l.shard.is_none()),
        "diverted before routing"
    );
    assert_eq!(
        rest.len() as u64 + diverted,
        lines.len() as u64,
        "nothing vanishes"
    );
}

#[test]
fn facade_block_policy_preserves_backpressure_with_slow_consumer() {
    let lines = corpus(150, 13);
    let mut cfg = test_config(FaultToleranceConfig::default());
    cfg.capacity = 8;
    let mut service = SupervisedParseService::spawn(cfg).expect("valid config");

    let received = std::thread::scope(|s| {
        s.spawn(|| {
            for (i, line) in lines.iter().enumerate() {
                // Block policy: this parks instead of shedding.
                assert_eq!(
                    service.submit(i as u64, line.clone()).expect("open"),
                    SubmitOutcome::Accepted
                );
            }
        });
        let mut received = 0usize;
        while received < lines.len() {
            if let Some(_item) = service.recv() {
                received += 1;
                std::thread::sleep(Duration::from_micros(200)); // slow consumer
            }
        }
        received
    });
    assert_eq!(received, lines.len());

    let metrics = service.metrics();
    assert_eq!(get(&metrics.lines_parsed), lines.len() as u64);
    assert_eq!(get(&metrics.lines_shed), 0);
    assert_eq!(get(&metrics.lines_quarantined), 0);
    service.close();
    let (rest, letters) = service.shutdown();
    assert!(rest.is_empty() && letters.is_empty());
}

#[test]
fn dropping_a_service_mid_chaos_does_not_deadlock() {
    let lines = corpus(60, 14);
    let plan = FaultPlan::new().crash_every(5).poison([7, 23]);
    let service = SupervisedParseService::spawn_with_injector(
        test_config(FaultToleranceConfig::default()),
        Some(plan.injector()),
    )
    .expect("valid config");

    for (i, line) in lines.iter().enumerate().take(40) {
        service.submit(i as u64, line.clone()).expect("open");
    }
    // Consume only a handful, then drop with queues non-empty and workers
    // crash-looping. The test completing *is* the assertion.
    for _ in 0..5 {
        service.recv();
    }
    drop(service);
}

// ----- flight-recorder dumps under chaos (observability PR) --------------

use monilog_core::stream::{TraceConfig, Tracer};
use std::path::{Path, PathBuf};

/// Minimal JSON well-formedness check (no JSON parser dependency in this
/// workspace): strings/escapes respected, brackets balanced, non-empty.
fn assert_well_formed_json(body: &str) {
    let mut stack = Vec::new();
    let mut in_string = false;
    let mut escaped = false;
    for c in body.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => stack.push(c),
            '}' => assert_eq!(stack.pop(), Some('{'), "unbalanced }} in {body}"),
            ']' => assert_eq!(stack.pop(), Some('['), "unbalanced ] in {body}"),
            _ => {}
        }
    }
    assert!(!in_string, "unterminated string in {body}");
    assert!(stack.is_empty(), "unbalanced brackets in {body}");
    assert!(body.trim_start().starts_with('{'), "not an object: {body}");
}

fn dump_files(dir: &Path, reason: &str) -> Vec<PathBuf> {
    let prefix = format!("monilog-flight-{reason}-");
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with(&prefix) && n.ends_with(".json"))
                })
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    files
}

fn dump_dir_for(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("monilog-chaos-{test}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn crash_loop_degradation_dumps_the_flight_recorder() {
    let dir = dump_dir_for("degrade");
    let tracer = Tracer::shared(
        &TraceConfig {
            sample_rate: 1,
            ring_capacity: 256,
            dump_dir: Some(dir.clone()),
        },
        2,
    );
    let plan = FaultPlan::new().crash_every(1);
    let mut cfg = test_config(FaultToleranceConfig::default());
    cfg.n_shards = 1;
    cfg.capacity = 8;
    cfg.max_consecutive_crashes = 2;
    let service = SupervisedParseService::spawn_with_tracer(
        cfg,
        Some(plan.injector()),
        Some(std::sync::Arc::clone(&tracer)),
    )
    .expect("valid config");
    let lines = corpus(10, 31);
    let got = pump(&service, &lines);
    assert!(!got.is_empty(), "degraded shard keeps flowing");
    drop(service);

    // Two worker crashes dump "crash"; the degradation itself dumps once.
    let crash_dumps = dump_files(&dir, "crash");
    assert!(
        crash_dumps.len() >= 2,
        "each worker crash preserved the rings: {crash_dumps:?}"
    );
    let degrade_dumps = dump_files(&dir, "degrade");
    assert_eq!(
        degrade_dumps.len(),
        1,
        "exactly one degradation: {degrade_dumps:?}"
    );
    for path in crash_dumps.iter().chain(&degrade_dumps) {
        let body = std::fs::read_to_string(path).expect("dump readable");
        assert_well_formed_json(&body);
        assert!(body.contains("\"flight\":{"), "{body}");
        assert!(body.contains("\"spans\":["), "{body}");
    }
    let degrade_body = std::fs::read_to_string(&degrade_dumps[0]).unwrap();
    assert!(
        degrade_body.starts_with("{\"reason\":\"degrade\""),
        "{degrade_body}"
    );
    assert!(
        degrade_body.contains("\"stage\":\"degrade\""),
        "degradation mark recorded: {degrade_body}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quarantine_dumps_the_flight_recorder() {
    let dir = dump_dir_for("quarantine");
    let tracer = Tracer::shared(
        &TraceConfig {
            sample_rate: 1,
            ring_capacity: 256,
            dump_dir: Some(dir.clone()),
        },
        2,
    );
    let plan = FaultPlan::new().poison([3]);
    let service = SupervisedParseService::spawn_with_tracer(
        test_config(FaultToleranceConfig::default()),
        Some(plan.injector()),
        Some(std::sync::Arc::clone(&tracer)),
    )
    .expect("valid config");
    let lines = corpus(12, 32);
    let got = pump(&service, &lines);
    assert_eq!(got.len(), lines.len() - 1, "only the poison line is lost");
    let (_, letters) = service.shutdown();
    assert_eq!(letters.len(), 1);
    assert_eq!(letters[0].reason, FailureReason::Panic);

    let dumps = dump_files(&dir, "quarantine");
    assert_eq!(dumps.len(), 1, "one quarantine, one dump: {dumps:?}");
    let body = std::fs::read_to_string(&dumps[0]).expect("dump readable");
    assert_well_formed_json(&body);
    assert!(body.starts_with("{\"reason\":\"quarantine\""), "{body}");
    // The quarantine mark carries the poisoned line's trace id (seq 3 → 4).
    assert!(body.contains("\"stage\":\"quarantine\""), "{body}");
    assert!(body.contains("\"trace_id\":4"), "{body}");
    // Sampled-at-1 traffic left parse spans in the rings too.
    assert!(body.contains("\"stage\":\"parse_exec\""), "{body}");
    let _ = std::fs::remove_dir_all(&dir);
}
