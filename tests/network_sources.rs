//! Integration tests for network ingestion: the syslog/HTTP/tail sources
//! must feed the pipeline a line stream byte-identical to file ingestion —
//! so the anomaly set cannot depend on how the logs travelled — and the
//! source queue must wire cleanly into the batched `submit_batch` path.

use monilog_core::cli::{run, CliCommand, DurableOptions, HeaderChoice, SourcesOptions};
use monilog_core::{FaultToleranceConfig, ObservabilityConfig};
use monilog_loggen::{GenLog, HdfsWorkload, HdfsWorkloadConfig};
use monilog_stream::sources::parse_syslog;
use monilog_stream::{BatchConfig, FrameDecoder, SourcesConfig, SourcesServer};
use proptest::prelude::*;
use std::io::Write as _;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("monilog-netsrc-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_workload(path: &Path, logs: &[GenLog]) {
    let mut out = String::new();
    for log in logs {
        out.push_str(&log.record.to_line());
        out.push('\n');
    }
    std::fs::write(path, out).unwrap();
}

fn train_checkpoint(dir: &Path) -> PathBuf {
    let train_file = dir.join("train.log");
    let ckpt = dir.join("model.mlcp");
    let training = HdfsWorkload::new(HdfsWorkloadConfig {
        n_sessions: 120,
        sequential_anomaly_rate: 0.0,
        quantitative_anomaly_rate: 0.0,
        seed: 6,
        ..Default::default()
    })
    .generate();
    write_workload(&train_file, &training);
    run(CliCommand::Train {
        logfile: train_file.to_string_lossy().into_owned(),
        checkpoint: ckpt.to_string_lossy().into_owned(),
        format: HeaderChoice::Dash,
        fault: FaultToleranceConfig::default(),
        batch: BatchConfig::default(),
        observability: ObservabilityConfig::default(),
        trace_out: None,
    })
    .expect("training succeeds");
    ckpt
}

fn live_lines() -> Vec<String> {
    HdfsWorkload::new(HdfsWorkloadConfig {
        n_sessions: 40,
        sequential_anomaly_rate: 0.15,
        quantitative_anomaly_rate: 0.0,
        seed: 7,
        start_ms: 1_600_003_600_000,
        ..Default::default()
    })
    .generate()
    .iter()
    .map(|l| l.record.to_line())
    .collect()
}

fn durable_opts(state_dir: &Path) -> DurableOptions {
    DurableOptions {
        state_dir: state_dir.to_string_lossy().into_owned(),
        checkpoint_interval_ms: 5_000,
        journal_fsync_ms: 0,
        journal_segment_bytes: 8 * 1024 * 1024,
        sinks: None,
        config_file: None,
        latency_budget_ms: 250,
    }
}

/// Poll `<state-dir>/listen-addrs` for the named source's bound address.
fn wait_for_addr(state_dir: &Path, key: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(content) = std::fs::read_to_string(state_dir.join("listen-addrs")) {
            for line in content.lines() {
                if let Some(addr) = line.strip_prefix(&format!("{key} ")) {
                    return addr.to_string();
                }
            }
        }
        assert!(Instant::now() < deadline, "no {key} address published");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// The anomaly sink, with the one field that legitimately differs between
/// transports — the per-event `"source":N` provenance (file = 0, syslog
/// TCP = 2) — canonicalised. Everything semantic (report ids, event ids,
/// timestamps, templates, scores, windows) must match byte-for-byte.
fn sink_lines(state_dir: &Path) -> Vec<String> {
    std::fs::read_to_string(state_dir.join("anomalies.jsonl"))
        .unwrap_or_default()
        .lines()
        .map(normalize_source_field)
        .collect()
}

fn normalize_source_field(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut rest = line;
    while let Some(at) = rest.find("\"source\":") {
        let tail = &rest[at + "\"source\":".len()..];
        let digits = tail.bytes().take_while(|b| b.is_ascii_digit()).count();
        out.push_str(&rest[..at]);
        out.push_str("\"source\":_");
        rest = &tail[digits..];
    }
    out.push_str(rest);
    out
}

/// The tentpole equivalence guarantee, end to end through a real socket:
/// the same live stream fed once from a file and once as framed syslog
/// over TCP (alternating LF and RFC 6587 octet-counted framing, wrapped in
/// RFC 5424 envelopes) produces a byte-identical anomaly sink.
#[test]
fn syslog_fed_monitor_matches_file_fed_reference() {
    let dir = tmp_dir("equiv");
    let ckpt = train_checkpoint(&dir);
    let lines = live_lines();

    // Reference: file-fed durable run.
    let ref_state = dir.join("state-file");
    let live_file = dir.join("live.log");
    std::fs::write(&live_file, format!("{}\n", lines.join("\n"))).unwrap();
    run(CliCommand::Monitor {
        logfile: Some(live_file.to_string_lossy().into_owned()),
        sources: None,
        checkpoint: ckpt.to_string_lossy().into_owned(),
        format: HeaderChoice::Dash,
        fault: FaultToleranceConfig::default(),
        batch: BatchConfig::default(),
        observability: ObservabilityConfig::default(),
        trace_out: None,
        durable: Some(durable_opts(&ref_state)),
    })
    .expect("file-fed run succeeds");
    let expected = sink_lines(&ref_state);
    assert!(!expected.is_empty(), "live stream must contain anomalies");

    // Network run: same lines as syslog frames over TCP.
    std::env::set_var("MONILOG_IDLE_EXIT_MS", "1500");
    let net_state = dir.join("state-net");
    std::fs::create_dir_all(&net_state).unwrap();
    let cmd = CliCommand::Monitor {
        logfile: None,
        sources: Some(SourcesOptions {
            syslog_tcp: Some("127.0.0.1:0".parse().unwrap()),
            ..SourcesOptions::default()
        }),
        checkpoint: ckpt.to_string_lossy().into_owned(),
        format: HeaderChoice::Dash,
        fault: FaultToleranceConfig::default(),
        batch: BatchConfig::default(),
        observability: ObservabilityConfig::default(),
        trace_out: None,
        durable: Some(durable_opts(&net_state)),
    };
    let monitor = std::thread::spawn(move || run(cmd).expect("network run succeeds"));

    let addr = wait_for_addr(&net_state, "syslog-tcp");
    let mut conn = TcpStream::connect(&addr).unwrap();
    for (i, line) in lines.iter().enumerate() {
        // Alternate framing across two connections would race ordering;
        // alternate envelope styles on one LF connection instead, then a
        // second octet-counted connection would interleave. Keep one
        // connection (ordering matters to windowing) and alternate the
        // envelope between RFC 5424 and RFC 3164.
        let framed = if i % 2 == 0 {
            format!("<14>1 2020-09-13T13:26:40Z host app - - - {line}\n")
        } else {
            format!("<13>Sep 13 13:26:40 host app: {line}\n")
        };
        conn.write_all(framed.as_bytes()).unwrap();
    }
    drop(conn);

    let report = monitor.join().expect("monitor thread");
    assert!(
        report.contains(&format!(
            "monitored {} lines from network sources",
            lines.len()
        )),
        "{report}"
    );
    let got = sink_lines(&net_state);
    assert_eq!(
        got, expected,
        "syslog-framed ingest must be byte-identical to file ingest"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// RFC 3164 `app:` tags glue the tag to the message with `: `; make sure
/// the test's framing helper reverses exactly (guards the test itself).
#[test]
fn rfc3164_envelope_round_trips_a_dash_header_line() {
    let line = "2020-09-13 13:26:40 - block blk_1 of size 6710 from /10.0.0.1";
    let framed = format!("<13>Sep 13 13:26:40 host app: {line}");
    assert_eq!(parse_syslog(&framed, 2020).msg, line);
}

/// Library wiring: a `SourceQueue` drains straight into the supervised
/// parse service's `submit_batch` path.
#[test]
fn source_queue_feeds_submit_batch() {
    use monilog_stream::{MetricsRegistry, SupervisedParseService, SupervisorConfig};

    let registry = MetricsRegistry::shared_with_shards(2);
    let (server, queue) = SourcesServer::spawn(
        SourcesConfig {
            syslog_tcp: Some("127.0.0.1:0".parse().unwrap()),
            ..SourcesConfig::default()
        },
        registry,
        None,
        None,
    )
    .unwrap();
    let service = SupervisedParseService::spawn(SupervisorConfig {
        n_shards: 2,
        ..SupervisorConfig::default()
    })
    .unwrap();

    let mut conn = TcpStream::connect(server.syslog_tcp_addr().unwrap()).unwrap();
    let total = 64u64;
    for i in 0..total {
        conn.write_all(format!("<14>job step alpha {i}\n").as_bytes())
            .unwrap();
    }
    drop(conn);

    let mut submitted = 0u64;
    let deadline = Instant::now() + Duration::from_secs(10);
    while submitted < total && Instant::now() < deadline {
        let batch = queue.recv_batch(256, Duration::from_millis(50));
        if batch.is_empty() {
            continue;
        }
        let items: Vec<(u64, monilog_model::ByteLine)> = batch
            .into_iter()
            .map(|ev| {
                submitted += 1;
                (submitted, ev.line)
            })
            .collect();
        service.submit_batch(items).expect("submit accepted");
    }
    assert_eq!(submitted, total, "every syslog line reaches submit_batch");
    drop(server);
    let (parsed, dead) = service.shutdown();
    assert_eq!(parsed.len() as u64, total);
    assert!(dead.is_empty());
}

/// Wrap a line in a syslog envelope + RFC 6587 framing, per-case choices.
/// (Always enveloped: a bare free-text line that happens to look like a
/// syslog envelope is legitimately re-interpreted, so only enveloped
/// transport promises byte-exact MSG recovery for arbitrary payloads.)
fn frame_line(line: &str, envelope: u8, octet: bool) -> Vec<u8> {
    let enveloped = match envelope % 2 {
        0 => format!("<14>1 2020-09-13T13:26:40Z host app - - - {line}"),
        _ => format!("<13>Sep 13 13:26:40 host app: {line}"),
    };
    if octet {
        format!("{} {}", enveloped.len(), enveloped).into_bytes()
    } else {
        format!("{enveloped}\n").into_bytes()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Transport invariance: for arbitrary printable lines, envelopes and
    /// read-buffer chunkings, decoding the syslog-framed byte stream and
    /// extracting MSG yields exactly the original lines. The pipeline is
    /// deterministic in its input lines (the e2e test above checks that
    /// through real sockets), so byte-identical line streams imply
    /// byte-identical anomaly sets.
    #[test]
    fn syslog_transport_is_byte_identical_to_file_ingest(
        lines in proptest::collection::vec("[ -~]{1,120}", 1..24),
        envelopes in proptest::collection::vec(0u8..2, 24),
        chunk in 1usize..64,
    ) {
        // Framing mode is sticky per connection (first byte auto-detects),
        // so exercise one mode per synthetic stream, like the source does.
        for octet in [false, true] {
            let mut wire = Vec::new();
            for (i, line) in lines.iter().enumerate() {
                let envelope = envelopes[i % envelopes.len()];
                wire.extend_from_slice(&frame_line(line, envelope, octet));
            }
            let mut decoder = FrameDecoder::new(1024 * 1024);
            let mut buf = Vec::new();
            let mut frames = Vec::new();
            // Arbitrary chunking: torn UTF-8, torn headers, torn frames.
            for piece in wire.chunks(chunk) {
                buf.extend_from_slice(piece);
                decoder.drain(&mut buf, &mut frames).expect("well-formed stream");
            }
            prop_assert_eq!(decoder.finish(&mut buf), 0, "no torn tail");
            let msgs: Vec<String> = frames
                .iter()
                .map(|f| parse_syslog(f, 2020).msg)
                .collect();
            prop_assert_eq!(msgs, lines.clone());
        }
    }
}
