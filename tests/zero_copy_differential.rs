//! Differential end-to-end tests for the zero-copy hot path.
//!
//! The arena-backed line representation ([`ByteLine`] views into shared
//! arrival buffers) must be *output-invisible*: a pipeline fed lines
//! carved out of batched arrival buffers — the way the network sources
//! actually deliver them — must produce anomaly sets byte-identical to
//! one fed per-line owned `String`s, including across a crash/respawn
//! with WAL replay on the durable pipeline.

use bytes::Bytes;
use monilog_core::detect::DeepLogConfig;
use monilog_core::model::{ByteLine, RawLog, SourceId};
use monilog_core::{
    DetectorChoice, DurableConfig, DurableMoniLog, HeaderFormatChoice, MoniLog, MoniLogConfig,
    WindowPolicy,
};
use monilog_loggen::{HdfsWorkload, HdfsWorkloadConfig};
use monilog_stream::durable::JournalConfig;
use std::path::PathBuf;

/// Pack lines into shared arrival buffers (newline-framed, like a socket
/// read) and carve one zero-copy [`RawLog`] per line out of each buffer.
fn arena_raws(lines: &[(SourceId, u64, String)], batch: usize) -> Vec<RawLog> {
    let mut out = Vec::with_capacity(lines.len());
    for chunk in lines.chunks(batch) {
        let mut text = String::new();
        for (_, _, l) in chunk {
            text.push_str(l);
            text.push('\n');
        }
        let buf = Bytes::from(text);
        let mut start = 0usize;
        for (source, seq, l) in chunk {
            let view = buf.slice(start..start + l.len());
            // The carve must share the arrival buffer, not copy it —
            // otherwise this test degenerates into owned-vs-owned.
            assert!(std::ptr::eq(view.as_ref().as_ptr(), unsafe {
                buf.as_ref().as_ptr().add(start)
            }));
            out.push(RawLog {
                source: *source,
                seq: *seq,
                line: ByteLine::from_bytes(view),
            });
            start += l.len() + 1;
        }
    }
    out
}

fn render(anomalies: &[monilog_core::ClassifiedAnomaly]) -> String {
    format!("{anomalies:#?}")
}

// ---------------------------------------------------------------- plain

const LIVE_SEQ: u64 = 10_000_000;
const LIVE_START_MS: u64 = 1_600_003_600_000;

fn hdfs_pipeline() -> MoniLog {
    let mut m = MoniLog::new(MoniLogConfig {
        window: WindowPolicy::Session {
            idle_ms: 2_000,
            max_events: 64,
        },
        detector: DetectorChoice::DeepLog(DeepLogConfig {
            history: 6,
            top_g: 2,
            epochs: 3,
            ..DeepLogConfig::default()
        }),
        ..MoniLogConfig::default()
    });
    let training = HdfsWorkload::new(HdfsWorkloadConfig {
        n_sessions: 150,
        sequential_anomaly_rate: 0.0,
        quantitative_anomaly_rate: 0.0,
        seed: 31,
        ..Default::default()
    })
    .generate();
    for log in &training {
        m.ingest_training(&RawLog::new(
            log.record.source,
            log.record.seq,
            log.record.to_line(),
        ));
    }
    m.train();
    m
}

#[test]
fn arena_and_owned_lines_produce_byte_identical_anomalies() {
    let live = HdfsWorkload::new(HdfsWorkloadConfig {
        n_sessions: 80,
        sequential_anomaly_rate: 0.06,
        quantitative_anomaly_rate: 0.04,
        seed: 32,
        start_ms: LIVE_START_MS,
    })
    .generate();
    let lines: Vec<(SourceId, u64, String)> = live
        .iter()
        .map(|g| (g.record.source, g.record.seq + LIVE_SEQ, g.record.to_line()))
        .collect();

    let mut owned_pipe = hdfs_pipeline();
    let mut owned_out = Vec::new();
    for (source, seq, line) in &lines {
        owned_out.extend(owned_pipe.ingest(&RawLog::new(*source, *seq, line.clone())));
    }
    owned_out.extend(owned_pipe.flush());
    assert!(!owned_out.is_empty(), "live stream must contain anomalies");

    let mut arena_pipe = hdfs_pipeline();
    let mut arena_out = Vec::new();
    for raw in arena_raws(&lines, 32) {
        arena_out.extend(arena_pipe.ingest(&raw));
    }
    arena_out.extend(arena_pipe.flush());

    assert_eq!(
        render(&owned_out),
        render(&arena_out),
        "arena-backed lines changed the anomaly set"
    );
}

// -------------------------------------------------------------- durable

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("monilog-zcdiff-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bare_config() -> MoniLogConfig {
    MoniLogConfig {
        header_format: HeaderFormatChoice::Bare,
        window: WindowPolicy::Tumbling { size: 4 },
        detector: DetectorChoice::DeepLog(DeepLogConfig {
            history: 3,
            top_g: 1,
            epochs: 2,
            ..DeepLogConfig::default()
        }),
        ..MoniLogConfig::default()
    }
}

fn bare_line(i: u64) -> String {
    if (40..52).contains(&i) {
        format!("unseen failure mode f{i} exploding")
    } else {
        let step = ["a", "b", "c", "d"][(i % 4) as usize];
        format!("step {step} of job j{}", i / 4)
    }
}

fn bare_trained() -> MoniLog {
    let mut m = MoniLog::new(bare_config());
    for i in 0..32u64 {
        m.ingest_training(&RawLog::new(SourceId(0), i + 1, bare_line(i)));
    }
    m.train();
    m
}

fn bare_raws(range: std::ops::Range<u64>) -> Vec<RawLog> {
    let lines: Vec<(SourceId, u64, String)> =
        range.map(|i| (SourceId(0), i + 1, bare_line(i))).collect();
    arena_raws(&lines, 7)
}

#[test]
fn crash_respawn_wal_replay_matches_owned_reference() {
    // Reference: owned-String lines through an uninterrupted pipeline.
    let mut reference = bare_trained();
    let mut expected = Vec::new();
    for i in 32..64u64 {
        expected.extend(reference.ingest(&RawLog::new(SourceId(0), i + 1, bare_line(i))));
    }
    expected.extend(reference.flush());
    assert!(!expected.is_empty(), "stream must contain anomalies");

    // Candidate: arena-backed lines through the durable pipeline, with a
    // mid-stream checkpoint, a crash past it, and a WAL-replay respawn.
    let dir = tmp_dir("crash");
    let durable = DurableConfig {
        checkpoint_interval_ms: u64::MAX,
        journal: JournalConfig {
            fsync_interval_ms: 0, // sync every line: worst-case replay
            ..JournalConfig::default()
        },
        ..DurableConfig::new(&dir)
    };
    let (mut first, stats) =
        DurableMoniLog::open(bare_config(), durable.clone(), || Ok(bare_trained())).unwrap();
    assert_eq!(stats.replayed_lines, 0);
    let mut emitted = Vec::new();
    for raw in bare_raws(32..40) {
        emitted.extend(first.ingest(&raw).unwrap());
    }
    let (batch, generation) = first.checkpoint_now().unwrap();
    emitted.extend(batch);
    assert_eq!(generation, 1);
    for raw in bare_raws(40..45) {
        emitted.extend(first.ingest(&raw).unwrap());
    }
    drop(first); // SIGKILL stand-in: lines 41..=45 only live in the WAL

    let (mut second, stats) = DurableMoniLog::open(bare_config(), durable, || {
        panic!("must recover from checkpoint, not retrain")
    })
    .unwrap();
    assert_eq!(stats.resumed_generation, Some(1));
    assert_eq!(stats.replayed_lines, 5, "lines 41..=45 replay from the WAL");
    emitted.extend(stats.anomalies);
    for raw in bare_raws(45..64) {
        emitted.extend(second.ingest(&raw).unwrap());
    }
    let (tail, _) = second.finish().unwrap();
    emitted.extend(tail);

    assert_eq!(
        render(&expected),
        render(&emitted),
        "arena lines + crash/respawn changed the anomaly set"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
