//! Offline vendored subset of the `bytes` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the narrow slice of the `bytes` API that the
//! workspace actually uses: sequential little-endian reads over `&[u8]`
//! ([`Buf`]), appends onto `Vec<u8>` ([`BufMut`]), and the refcounted
//! shared-buffer type ([`Bytes`]) that backs the zero-copy ingest path.
//! Semantics match the real crate for that subset (advancing cursors,
//! panics on under-run — the codec guards with `remaining()` first;
//! cheap `Bytes::clone`/`slice` sharing one allocation).

use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable view into a refcounted byte buffer.
///
/// Mirrors `bytes::Bytes` for the operations the workspace needs: a line
/// read off a socket / file / WAL segment is wrapped once, and every
/// sub-slice (`slice`, `slice_ref`) shares the same allocation instead of
/// copying. Unlike the real crate this is backed by `Arc<Vec<u8>>` (no
/// vtable tricks), which keeps `From<Vec<u8>>` copy-free.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation shared).
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy `data` into a fresh refcounted buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view of this buffer sharing the same allocation.
    ///
    /// Panics if the range is out of bounds (matching the real crate).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// The sub-view corresponding to `subset`, which must point into this
    /// buffer (same allocation, in range). Shares the allocation.
    pub fn slice_ref(&self, subset: &[u8]) -> Bytes {
        if subset.is_empty() {
            return Bytes::new();
        }
        let base = self.as_ref().as_ptr() as usize;
        let sub = subset.as_ptr() as usize;
        assert!(
            sub >= base && sub + subset.len() <= base + self.len(),
            "slice_ref: subset is not within this buffer"
        );
        let lo = sub - base;
        self.slice(lo..lo + subset.len())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"{}\"", self.escape_ascii())
    }
}

/// Sequential read access to a contiguous byte cursor.
pub trait Buf {
    /// Bytes left between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Advance the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Copy `dst.len()` bytes from the cursor into `dst`, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer under-run");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Sequential write access to a growable byte buffer.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_slice(&mut self, src: &[u8]);

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut buf: Vec<u8> = Vec::new();
        buf.put_u8(7);
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_f64_le(-1.5);
        buf.put_slice(b"tail");

        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f64_le(), -1.5);
        let mut tail = [0u8; 4];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"tail");
        assert!(!r.has_remaining());
    }

    #[test]
    fn bytes_sharing_and_slicing() {
        let b = Bytes::from(b"hello world".to_vec());
        assert_eq!(b.len(), 11);
        let hello = b.slice(..5);
        let world = b.slice(6..);
        assert_eq!(&hello[..], b"hello");
        assert_eq!(&world[..], b"world");
        // Clones and slices share the allocation.
        assert!(std::ptr::eq(hello.as_ref().as_ptr(), b.as_ref().as_ptr()));
        let again = world.slice(1..3);
        assert_eq!(&again[..], b"or");
        assert_eq!(b.slice(..), b);
    }

    #[test]
    fn bytes_slice_ref_points_into_buffer() {
        let b = Bytes::from(b"abc def".to_vec());
        let sub = &b.as_ref()[4..];
        let re = b.slice_ref(sub);
        assert_eq!(&re[..], b"def");
        assert_eq!(b.slice_ref(&[]).len(), 0);
    }

    #[test]
    #[should_panic(expected = "slice_ref")]
    fn bytes_slice_ref_rejects_foreign_slices() {
        let b = Bytes::from(b"abc".to_vec());
        let other = [1u8, 2, 3];
        let _ = b.slice_ref(&other);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bytes_slice_bounds_checked() {
        let _ = Bytes::from(b"abc".to_vec()).slice(1..5);
    }

    #[test]
    fn bytes_eq_hash_follow_contents() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a = Bytes::from(b"xyz".to_vec());
        let b = Bytes::from(b"__xyz__".to_vec()).slice(2..5);
        assert_eq!(a, b);
        let hash = |v: &Bytes| {
            let mut h = DefaultHasher::new();
            v.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }

    #[test]
    fn advance_moves_cursor() {
        let data = [1u8, 2, 3, 4];
        let mut r: &[u8] = &data;
        r.advance(2);
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.get_u8(), 3);
    }
}
