//! Offline vendored subset of the `bytes` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the narrow slice of the `bytes` API that
//! `monilog-model::codec` actually uses: sequential little-endian reads
//! over `&[u8]` ([`Buf`]) and appends onto `Vec<u8>` ([`BufMut`]).
//! Semantics match the real crate for that subset (advancing cursors,
//! panics on under-run — the codec guards with `remaining()` first).

/// Sequential read access to a contiguous byte cursor.
pub trait Buf {
    /// Bytes left between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Advance the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Copy `dst.len()` bytes from the cursor into `dst`, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer under-run");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Sequential write access to a growable byte buffer.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_slice(&mut self, src: &[u8]);

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut buf: Vec<u8> = Vec::new();
        buf.put_u8(7);
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_f64_le(-1.5);
        buf.put_slice(b"tail");

        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f64_le(), -1.5);
        let mut tail = [0u8; 4];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"tail");
        assert!(!r.has_remaining());
    }

    #[test]
    fn advance_moves_cursor() {
        let data = [1u8, 2, 3, 4];
        let mut r: &[u8] = &data;
        r.advance(2);
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.get_u8(), 3);
    }
}
