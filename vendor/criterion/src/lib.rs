//! Offline vendored mini benchmark harness.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the subset of the `criterion` API the workspace's benches use:
//! [`Criterion`], [`BenchmarkId`], [`Throughput`], benchmark groups with
//! `sample_size` / `throughput` / `bench_function` / `finish`,
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement is deliberately simple: each benchmark runs a short
//! calibration pass, then a fixed number of timed samples, and reports the
//! median per-iteration time (plus throughput when configured). There is
//! no warm-up tuning, outlier analysis, or HTML report. Under `cargo test`
//! (which invokes bench binaries with `--test`) each benchmark executes a
//! single iteration, keeping test runs fast while still exercising the
//! bench code paths.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level harness handle passed to each registered bench function.
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            sample_size: 30,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(
            &id.full_name(None),
            self.test_mode,
            self.sample_size,
            None,
            &mut f,
        );
        self
    }
}

/// Identifies a benchmark, optionally parameterised (`name/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn full_name(&self, group: Option<&str>) -> String {
        let mut out = String::new();
        if let Some(g) = group {
            out.push_str(g);
            out.push('/');
        }
        out.push_str(&self.function);
        if let Some(p) = &self.parameter {
            if !self.function.is_empty() {
                out.push('/');
            }
            out.push_str(p);
        }
        out
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: s.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: s,
            parameter: None,
        }
    }
}

/// Units processed per iteration, for derived rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "sample_size must be at least 1");
        self.sample_size = Some(n);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(
            &id.full_name(Some(&self.name)),
            self.criterion.test_mode,
            samples,
            self.throughput,
            &mut f,
        );
        self
    }

    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the code
/// under measurement.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    test_mode: bool,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    if test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("test {name} ... ok");
        return;
    }

    // Calibrate: grow the iteration count until one sample takes ≥ ~2 ms,
    // so short benchmarks are not dominated by timer resolution.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }

    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];

    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  thrpt: {:.3} Kelem/s", n as f64 / median / 1e3),
        Some(Throughput::Bytes(n)) => {
            format!("  thrpt: {:.3} MiB/s", n as f64 / median / (1 << 20) as f64)
        }
        None => String::new(),
    };
    println!("{name:<40} time: {}{rate}", format_time(median));
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Collects bench functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` invoking each group (bench targets use `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_names() {
        assert_eq!(
            BenchmarkId::new("online", "Drain").full_name(Some("parsers")),
            "parsers/online/Drain"
        );
        assert_eq!(
            BenchmarkId::from(&*"plain".to_string()).full_name(Some("g")),
            "g/plain"
        );
        assert_eq!(BenchmarkId::from_parameter(8).full_name(None), "8");
    }

    #[test]
    fn bencher_runs_requested_iterations() {
        let mut count = 0u64;
        let mut b = Bencher {
            iters: 5,
            elapsed: Duration::ZERO,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 5);
        assert!(b.elapsed > Duration::ZERO || count == 5);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion {
            test_mode: true,
            sample_size: 30,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Elements(100));
        let mut ran = false;
        group.bench_function("noop", |b| b.iter(|| ran = true));
        group.finish();
        assert!(ran);
    }
}
