//! MPMC channels with crossbeam-compatible semantics (see crate docs).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A bounded channel: `send` blocks while `cap` messages are queued.
///
/// Zero-capacity rendezvous channels are not supported by this vendored
/// subset; `cap` must be at least 1.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(
        cap >= 1,
        "vendored crossbeam does not support capacity-0 rendezvous channels"
    );
    new_channel(Some(cap))
}

/// An unbounded channel: `send` never blocks.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    new_channel(None)
}

fn new_channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

struct Inner<T> {
    queue: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

// ---- errors ---------------------------------------------------------------

/// The message could not be sent because the channel is disconnected.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

#[derive(PartialEq, Eq, Clone, Copy)]
pub enum TrySendError<T> {
    /// The channel is full (bounded channels only).
    Full(T),
    /// All receivers are gone.
    Disconnected(T),
}

#[derive(PartialEq, Eq, Clone, Copy)]
pub enum SendTimeoutError<T> {
    /// The deadline passed with the channel still full.
    Timeout(T),
    /// All receivers are gone.
    Disconnected(T),
}

/// The channel is empty and all senders are gone.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("sending on a full channel"),
            TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

impl<T> std::error::Error for TrySendError<T> {}

impl<T> fmt::Debug for SendTimeoutError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendTimeoutError::Timeout(_) => f.write_str("Timeout(..)"),
            SendTimeoutError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

impl<T> fmt::Display for SendTimeoutError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendTimeoutError::Timeout(_) => f.write_str("timed out sending on a full channel"),
            SendTimeoutError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

impl<T> std::error::Error for SendTimeoutError<T> {}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out receiving on an empty channel"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

// ---- sender ---------------------------------------------------------------

/// The sending half; clone for more producers.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Sender<T> {
    /// Send, blocking while the channel is full.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.chan.inner.lock().unwrap();
        loop {
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            if inner.cap.is_none_or(|c| inner.queue.len() < c) {
                inner.queue.push_back(value);
                self.chan.not_empty.notify_one();
                return Ok(());
            }
            inner = self.chan.not_full.wait(inner).unwrap();
        }
    }

    /// Send without blocking.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.chan.inner.lock().unwrap();
        if inner.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if inner.cap.is_some_and(|c| inner.queue.len() >= c) {
            return Err(TrySendError::Full(value));
        }
        inner.queue.push_back(value);
        self.chan.not_empty.notify_one();
        Ok(())
    }

    /// Send, blocking at most `timeout` for space.
    pub fn send_timeout(&self, value: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.chan.inner.lock().unwrap();
        loop {
            if inner.receivers == 0 {
                return Err(SendTimeoutError::Disconnected(value));
            }
            if inner.cap.is_none_or(|c| inner.queue.len() < c) {
                inner.queue.push_back(value);
                self.chan.not_empty.notify_one();
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(SendTimeoutError::Timeout(value));
            }
            let (guard, _timed_out) = self
                .chan
                .not_full
                .wait_timeout(inner, deadline - now)
                .unwrap();
            inner = guard;
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.chan.inner.lock().unwrap().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.inner.lock().unwrap().senders += 1;
        Sender {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.chan.inner.lock().unwrap();
        inner.senders -= 1;
        if inner.senders == 0 {
            // Wake receivers blocked on an empty queue so they observe the
            // disconnect.
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

// ---- receiver -------------------------------------------------------------

/// The receiving half; clone for more consumers (messages go to exactly
/// one receiver each).
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Receiver<T> {
    /// Receive, blocking while the channel is empty and senders remain.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.chan.inner.lock().unwrap();
        loop {
            if let Some(v) = inner.queue.pop_front() {
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.chan.not_empty.wait(inner).unwrap();
        }
    }

    /// Receive without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.chan.inner.lock().unwrap();
        if let Some(v) = inner.queue.pop_front() {
            self.chan.not_full.notify_one();
            return Ok(v);
        }
        if inner.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Receive, blocking at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.chan.inner.lock().unwrap();
        loop {
            if let Some(v) = inner.queue.pop_front() {
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) = self
                .chan
                .not_empty
                .wait_timeout(inner, deadline - now)
                .unwrap();
            inner = guard;
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.chan.inner.lock().unwrap().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocking iterator: yields until the channel is empty and
    /// disconnected.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.inner.lock().unwrap().receivers += 1;
        Receiver {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.chan.inner.lock().unwrap();
        inner.receivers -= 1;
        if inner.receivers == 0 {
            // Wake senders blocked on a full queue so they observe the
            // disconnect.
            self.chan.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

pub struct IntoIter<T> {
    rx: Receiver<T>,
}

impl<T> Iterator for IntoIter<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;

    fn into_iter(self) -> IntoIter<T> {
        IntoIter { rx: self }
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn bounded_blocks_and_unblocks() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        let handle = std::thread::spawn(move || tx.send(3));
        assert_eq!(rx.recv(), Ok(1));
        handle.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn recv_drains_then_disconnects() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
        assert!(matches!(tx.try_send(9), Err(TrySendError::Disconnected(9))));
    }

    #[test]
    fn mpmc_delivers_each_message_once() {
        let (tx, rx) = bounded::<u64>(8);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        for i in 0..1_000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..1_000).collect::<Vec<_>>());
    }

    #[test]
    fn timeouts_fire() {
        let (tx, rx) = bounded::<u32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(1).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(20)), Ok(1));
        tx.send(2).unwrap();
        assert!(matches!(
            tx.send_timeout(3, Duration::from_millis(20)),
            Err(SendTimeoutError::Timeout(3))
        ));
    }

    #[test]
    fn iteration_terminates_on_disconnect() {
        let (tx, rx) = unbounded::<u32>();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<u32> = rx.into_iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }
}
