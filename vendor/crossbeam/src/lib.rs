//! Offline vendored subset of `crossbeam`.
//!
//! The build environment cannot reach crates.io, so this crate provides
//! the piece of crossbeam the workspace uses: [`channel`] — multi-producer
//! **multi-consumer** channels, bounded (blocking, for backpressure) and
//! unbounded, with disconnect semantics matching the real crate:
//!
//! - `send` fails only when every `Receiver` is gone;
//! - `recv` drains remaining messages, then fails when every `Sender` is
//!   gone;
//! - cloning a `Sender`/`Receiver` adds a peer on the same queue.
//!
//! Built on `Mutex` + `Condvar` — per-operation cost is a lock, which is
//! fine for the coarse-grained line-at-a-time pipelines here. `select!`,
//! zero-capacity rendezvous channels, and the scope/deque/epoch modules
//! are not implemented.

pub mod channel;
