//! Offline vendored subset of `parking_lot`.
//!
//! Thin poison-free wrappers over the std primitives: `lock()` returns the
//! guard directly (a poisoned std lock is recovered, matching parking_lot's
//! no-poisoning semantics, which the stream supervisor relies on — a
//! panicking worker must not wedge the shared state it was updating).
//! The real crate's performance tricks (parking, inline fast path) are
//! not reproduced; callers here are coarse-grained.

use std::sync::PoisonError;

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn lock_survives_a_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std lock");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock stays usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
