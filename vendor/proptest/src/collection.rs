//! Collection strategies (`collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Size specification for generated collections. Built from an exact
/// `usize`, a `Range<usize>`, or a `RangeInclusive<usize>`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_incl: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_incl: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi_incl: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi_incl: *r.end(),
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.lo == self.hi_incl {
            self.lo
        } else {
            self.lo + rng.below((self.hi_incl - self.lo + 1) as u64) as usize
        }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length is
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn exact_and_ranged_sizes() {
        let mut rng = TestRng::for_test("exact_and_ranged_sizes");
        let exact = vec(0u8..10, 12);
        for _ in 0..50 {
            let v = exact.generate(&mut rng);
            assert_eq!(v.len(), 12);
            assert!(v.iter().all(|&x| x < 10));
        }
        let ranged = vec(0u8..10, 2..5);
        let mut lens = std::collections::HashSet::new();
        for _ in 0..200 {
            lens.insert(ranged.generate(&mut rng).len());
        }
        assert_eq!(lens, [2, 3, 4].into_iter().collect());
        let incl = vec(0u8..10, 1..=2);
        for _ in 0..50 {
            let n = incl.generate(&mut rng).len();
            assert!((1..=2).contains(&n));
        }
    }
}
