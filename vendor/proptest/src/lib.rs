//! Offline vendored mini property-testing harness.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the subset of the `proptest` API the workspace's tests use, with the
//! same surface syntax:
//!
//! - [`strategy::Strategy`] with `prop_map` and `boxed`;
//! - ranges, `&str` regex-subset patterns, [`strategy::Just`],
//!   [`strategy::any`], [`collection::vec`], tuples, and `prop_oneof!` as
//!   strategies;
//! - the [`proptest!`] macro (optional `#![proptest_config(..)]` header),
//!   `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`;
//! - a deterministic per-test RNG, so failures reproduce across runs.
//!
//! Differences from the real crate: cases are generated independently with
//! **no shrinking** (a failing case reports the generated inputs verbatim
//! instead), and string patterns support the regex subset actually used in
//! this workspace (character classes, groups, `{m,n}`/`*`/`+`/`?`
//! quantifiers, and `\PC` for printable non-control characters).

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. Mirrors `proptest::proptest!` syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(x in 0u64..100, s in "[a-z]{1,4}", seed: u64) { ... }
/// }
/// ```
///
/// Parameters come in two forms, freely mixed: `pat in strategy` and the
/// typed shorthand `name: Type` (equivalent to `name in any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Splits a `proptest!` block into its test functions. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*) => {
        $crate::__proptest_item!(@munch ($cfg) ($(#[$meta])*) ($name) ($body) [] $($params)*);
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// Munches one parameter list into `(pattern) (strategy)` pairs, then
/// emits the runner. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_item {
    // Typed shorthand: `name: Type` ≡ `name in any::<Type>()`.
    (@munch $cfg:tt $metas:tt $name:tt $body:tt [$($acc:tt)*]
     $pname:ident : $ty:ty, $($rest:tt)*) => {
        $crate::__proptest_item!(@munch $cfg $metas $name $body
            [$($acc)* (($pname) ($crate::strategy::any::<$ty>()))] $($rest)*);
    };
    (@munch $cfg:tt $metas:tt $name:tt $body:tt [$($acc:tt)*]
     $pname:ident : $ty:ty) => {
        $crate::__proptest_item!(@munch $cfg $metas $name $body
            [$($acc)* (($pname) ($crate::strategy::any::<$ty>()))]);
    };
    // Explicit strategy: `pat in strategy`.
    (@munch $cfg:tt $metas:tt $name:tt $body:tt [$($acc:tt)*]
     $pat:pat in $strat:expr, $($rest:tt)*) => {
        $crate::__proptest_item!(@munch $cfg $metas $name $body
            [$($acc)* (($pat) ($strat))] $($rest)*);
    };
    (@munch $cfg:tt $metas:tt $name:tt $body:tt [$($acc:tt)*]
     $pat:pat in $strat:expr) => {
        $crate::__proptest_item!(@munch $cfg $metas $name $body
            [$($acc)* (($pat) ($strat))]);
    };
    // All parameters munched: emit the test function.
    (@munch ($cfg:expr) ($(#[$meta:meta])*) ($name:ident) ($body:block)
     [$((($pat:pat) ($strat:expr)))+]) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                // One value per strategy; the tuple is formatted up front
                // so a panicking body can report its inputs (this harness
                // reports instead of shrinking).
                let __inputs = (
                    $($crate::strategy::Strategy::generate(&($strat), &mut __rng),)+
                );
                let __described = format!("{:#?}", &__inputs);
                let ($($pat,)+) = __inputs;
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let Err(__panic) = __outcome {
                    eprintln!(
                        "proptest {}: case {}/{} failed with inputs:\n{}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __described,
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Picks uniformly between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
