//! The [`Strategy`] trait and the built-in strategies.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike the real proptest (value *trees* supporting shrinking), this
/// mini-harness generates plain values; the runner reports failing inputs
/// instead of shrinking them.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Filter generated values; regenerates until `f` accepts one (gives
    /// up after a bounded number of attempts).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 candidates in a row",
            self.whence
        );
    }
}

/// Uniform choice between boxed strategies (the `prop_oneof!` backend).
pub struct OneOf<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// ---- ranges ---------------------------------------------------------------

/// Numeric types generable from ranges and `any()`.
pub trait Num: Sized + Copy {
    fn sample_half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
    fn sample_any(rng: &mut TestRng) -> Self;
}

macro_rules! impl_num_int {
    ($($t:ty),*) => {$(
        impl Num for $t {
            fn sample_half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                Self::sample_inclusive(lo, hi - 1, rng)
            }

            // Implemented directly (not via `hi + 1`) so ranges ending at
            // the type's maximum don't overflow.
            fn sample_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                ((lo as i128) + off as i128) as $t
            }

            fn sample_any(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_num_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_num_float {
    ($($t:ty),*) => {$(
        impl Num for $t {
            fn sample_half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }

            /// The inclusive upper bound is hit with probability ~0; the
            /// distinction is meaningless for floats.
            fn sample_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                if lo == hi { lo } else { Self::sample_half_open(lo, hi, rng) }
            }

            /// Finite floats plus signed zeros and infinities — matching
            /// the real crate's default of excluding NaN, so equality
            /// round-trip properties hold.
            fn sample_any(rng: &mut TestRng) -> Self {
                match rng.below(16) {
                    0 => 0.0,
                    1 => -0.0,
                    2 => <$t>::INFINITY,
                    3 => <$t>::NEG_INFINITY,
                    4 => <$t>::MIN_POSITIVE,
                    5 => <$t>::MAX,
                    _ => {
                        let mag = (rng.unit_f64() * 2.0 - 1.0) * 1e12;
                        let scale = 10f64.powi((rng.below(24) as i32) - 12);
                        (mag * scale) as $t
                    }
                }
            }
        }
    )*};
}

impl_num_float!(f32, f64);

impl<T: Num> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: Num> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

// ---- string patterns ------------------------------------------------------

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

// ---- any ------------------------------------------------------------------

/// Full-domain generation for primitives, via `any::<T>()`.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_num {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                <$t as Num>::sample_any(rng)
            }
        }
    )*};
}

impl_arbitrary_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly ASCII with occasional wider codepoints.
        match rng.below(4) {
            0 => char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap(),
            _ => char::from_u32(rng.below(0xD7FF) as u32).unwrap_or('\u{FFFD}'),
        }
    }
}

pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---- tuples ---------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D));

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps() {
        let mut rng = TestRng::for_test("ranges_and_maps");
        for _ in 0..500 {
            let v = (3u64..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let v = (0i64..=4).generate(&mut rng);
            assert!((0..=4).contains(&v));
            let v = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&v));
        }
        let doubled = (1u32..5).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = doubled.generate(&mut rng);
            assert!(v % 2 == 0 && (2..10).contains(&v));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::for_test("oneof_hits_every_arm");
        let strat = OneOf::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn any_floats_are_not_nan() {
        let mut rng = TestRng::for_test("any_floats_are_not_nan");
        for _ in 0..2_000 {
            let f: f64 = Arbitrary::arbitrary(&mut rng);
            assert!(!f.is_nan());
        }
    }

    #[test]
    fn filter_regenerates() {
        let mut rng = TestRng::for_test("filter_regenerates");
        let even = (0u64..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(even.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::for_test("tuples_generate_componentwise");
        let (a, b) = (0u8..10, Just("x")).generate(&mut rng);
        assert!(a < 10);
        assert_eq!(b, "x");
    }
}
