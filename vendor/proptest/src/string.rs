//! Regex-subset string generation for `&str` strategies.
//!
//! Supports the constructs this workspace's tests actually use: literal
//! characters, character classes `[...]` (with `a-z`-style ranges),
//! groups `(...)`, quantifiers `{m}` / `{m,n}` / `*` / `+` / `?`, and the
//! escape `\PC` (printable non-control characters). Anything else panics
//! with a clear message rather than silently generating the wrong language.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Node {
    Literal(char),
    /// One uniformly-chosen character from the listed alternatives.
    Class(Vec<char>),
    Group(Vec<Quantified>),
}

#[derive(Debug, Clone)]
struct Quantified {
    node: Node,
    min: usize,
    max: usize,
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0;
    let seq = parse_sequence(pattern, &chars, &mut pos, /*in_group=*/ false);
    assert!(
        pos == chars.len(),
        "unsupported trailing construct at byte offset {pos} in pattern {pattern:?}"
    );
    let mut out = String::new();
    emit_sequence(&seq, rng, &mut out);
    out
}

fn emit_sequence(seq: &[Quantified], rng: &mut TestRng, out: &mut String) {
    for q in seq {
        let n = if q.min == q.max {
            q.min
        } else {
            q.min + rng.below((q.max - q.min + 1) as u64) as usize
        };
        for _ in 0..n {
            emit_node(&q.node, rng, out);
        }
    }
}

fn emit_node(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Literal(c) => out.push(*c),
        Node::Class(alts) => out.push(alts[rng.below(alts.len() as u64) as usize]),
        Node::Group(seq) => emit_sequence(seq, rng, out),
    }
}

fn parse_sequence(
    pattern: &str,
    chars: &[char],
    pos: &mut usize,
    in_group: bool,
) -> Vec<Quantified> {
    let mut seq = Vec::new();
    while *pos < chars.len() {
        let c = chars[*pos];
        let node = match c {
            ')' if in_group => break,
            '[' => {
                *pos += 1;
                Node::Class(parse_class(pattern, chars, pos))
            }
            '(' => {
                *pos += 1;
                let inner = parse_sequence(pattern, chars, pos, true);
                assert!(
                    *pos < chars.len() && chars[*pos] == ')',
                    "unclosed group in pattern {pattern:?}"
                );
                *pos += 1;
                Node::Group(inner)
            }
            '\\' => {
                *pos += 1;
                parse_escape(pattern, chars, pos)
            }
            '.' => {
                *pos += 1;
                Node::Class(printable_chars())
            }
            '|' | '^' | '$' => {
                panic!("unsupported regex construct {c:?} in pattern {pattern:?}")
            }
            _ => {
                *pos += 1;
                Node::Literal(c)
            }
        };
        let (min, max) = parse_quantifier(pattern, chars, pos);
        seq.push(Quantified { node, min, max });
    }
    seq
}

/// Parses an escape with `pos` already past the backslash.
fn parse_escape(pattern: &str, chars: &[char], pos: &mut usize) -> Node {
    assert!(
        *pos < chars.len(),
        "dangling backslash in pattern {pattern:?}"
    );
    let c = chars[*pos];
    *pos += 1;
    match c {
        // \PC — "not a control character". Approximated by a printable
        // pool including a few multibyte codepoints, plenty for fuzzing
        // tokenizer robustness.
        'P' => {
            assert!(
                *pos < chars.len() && chars[*pos] == 'C',
                "only the \\PC escape class is supported, in pattern {pattern:?}"
            );
            *pos += 1;
            Node::Class(printable_chars())
        }
        'd' => Node::Class(('0'..='9').collect()),
        'w' => {
            let mut v: Vec<char> = ('a'..='z').collect();
            v.extend('A'..='Z');
            v.extend('0'..='9');
            v.push('_');
            Node::Class(v)
        }
        's' => Node::Class(vec![' ', '\t']),
        'n' => Node::Literal('\n'),
        't' => Node::Literal('\t'),
        'r' => Node::Literal('\r'),
        // Escaped metacharacter → literal.
        '\\' | '.' | '[' | ']' | '(' | ')' | '{' | '}' | '*' | '+' | '?' | '|' | '^' | '$'
        | '-' | '/' => Node::Literal(c),
        other => panic!("unsupported escape \\{other} in pattern {pattern:?}"),
    }
}

/// Parses a `[...]` class body with `pos` just past the `[`.
fn parse_class(pattern: &str, chars: &[char], pos: &mut usize) -> Vec<char> {
    assert!(
        *pos < chars.len() && chars[*pos] != '^',
        "negated classes are not supported, in pattern {pattern:?}"
    );
    let mut alts = Vec::new();
    while *pos < chars.len() && chars[*pos] != ']' {
        let lo = if chars[*pos] == '\\' {
            *pos += 1;
            assert!(
                *pos < chars.len(),
                "dangling backslash in class in {pattern:?}"
            );
            let e = chars[*pos];
            *pos += 1;
            e
        } else {
            let c = chars[*pos];
            *pos += 1;
            c
        };
        // `a-z` range — only when `-` is sandwiched between two chars.
        if *pos + 1 < chars.len() && chars[*pos] == '-' && chars[*pos + 1] != ']' {
            let hi = chars[*pos + 1];
            *pos += 2;
            assert!(
                lo <= hi,
                "inverted class range {lo}-{hi} in pattern {pattern:?}"
            );
            alts.extend(lo..=hi);
        } else {
            alts.push(lo);
        }
    }
    assert!(
        *pos < chars.len() && chars[*pos] == ']',
        "unclosed character class in pattern {pattern:?}"
    );
    *pos += 1;
    assert!(
        !alts.is_empty(),
        "empty character class in pattern {pattern:?}"
    );
    alts
}

/// Parses an optional quantifier after a node; returns `(min, max)`.
fn parse_quantifier(pattern: &str, chars: &[char], pos: &mut usize) -> (usize, usize) {
    const UNBOUNDED_CAP: usize = 16;
    if *pos >= chars.len() {
        return (1, 1);
    }
    match chars[*pos] {
        '*' => {
            *pos += 1;
            (0, UNBOUNDED_CAP)
        }
        '+' => {
            *pos += 1;
            (1, UNBOUNDED_CAP)
        }
        '?' => {
            *pos += 1;
            (0, 1)
        }
        '{' => {
            let close = chars[*pos..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed quantifier in pattern {pattern:?}"));
            let body: String = chars[*pos + 1..*pos + close].iter().collect();
            *pos += close + 1;
            let parse_n = |s: &str| -> usize {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad quantifier bound {s:?} in {pattern:?}"))
            };
            match body.split_once(',') {
                None => {
                    let n = parse_n(&body);
                    (n, n)
                }
                Some((lo, hi)) if hi.trim().is_empty() => (parse_n(lo), UNBOUNDED_CAP),
                Some((lo, hi)) => (parse_n(lo), parse_n(hi)),
            }
        }
        _ => (1, 1),
    }
}

/// Printable, non-control characters: the `\PC` pool (and `.`).
fn printable_chars() -> Vec<char> {
    let mut v: Vec<char> = (' '..='~').collect();
    // A few multibyte codepoints so UTF-8 boundary handling gets exercised.
    v.extend(['é', 'ß', 'λ', '中', '漢', '→', '°', '…']);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn gen(pattern: &str, rng: &mut TestRng) -> String {
        generate(pattern, rng)
    }

    #[test]
    fn classes_with_ranges() {
        let mut rng = TestRng::for_test("classes_with_ranges");
        for _ in 0..300 {
            let s = gen("[ a-zA-Z0-9:./]{0,80}", &mut rng);
            assert!(s.len() <= 80);
            assert!(s
                .chars()
                .all(|c| c == ' ' || c.is_ascii_alphanumeric() || ":./".contains(c)));
        }
    }

    #[test]
    fn ascii_printable_class() {
        let mut rng = TestRng::for_test("ascii_printable_class");
        for _ in 0..300 {
            let s = gen("[!-~]{0,12}", &mut rng);
            assert!(s.chars().count() <= 12);
            assert!(s.chars().all(|c| ('!'..='~').contains(&c)));
        }
    }

    #[test]
    fn groups_with_quantifiers() {
        let mut rng = TestRng::for_test("groups_with_quantifiers");
        for _ in 0..300 {
            let s = gen("[a-d]{1,3}( [a-d]{1,3}){0,5}", &mut rng);
            let words: Vec<&str> = s.split(' ').collect();
            assert!((1..=6).contains(&words.len()));
            for w in words {
                assert!((1..=3).contains(&w.len()));
                assert!(w.chars().all(|c| ('a'..='d').contains(&c)));
            }
        }
    }

    #[test]
    fn pc_escape_is_printable() {
        let mut rng = TestRng::for_test("pc_escape_is_printable");
        for _ in 0..300 {
            let s = gen("\\PC{0,80}", &mut rng);
            assert!(s.chars().count() <= 80);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn star_plus_question() {
        let mut rng = TestRng::for_test("star_plus_question");
        for _ in 0..100 {
            let s = gen("ab?c*d+", &mut rng);
            assert!(s.starts_with('a'));
            assert!(s.ends_with('d'));
        }
    }

    #[test]
    #[should_panic(expected = "unsupported regex construct")]
    fn alternation_panics_loudly() {
        let mut rng = TestRng::for_test("alternation_panics_loudly");
        gen("a|b", &mut rng);
    }
}
