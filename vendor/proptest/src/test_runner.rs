//! Deterministic test RNG and run configuration.

/// How many random cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the workspace's many
        // properties fast while still exploring a useful input variety.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG (xoshiro256++), seeded from the test's name so every
/// test explores its own fixed sequence — failures reproduce exactly on
/// re-run without recording seeds.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name, expanded through SplitMix64.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self::seed_from_u64(h)
    }

    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        TestRng { s }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        let mut c = TestRng::for_test("beta");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = TestRng::for_test("below");
        for _ in 0..1_000 {
            assert!(rng.below(7) < 7);
        }
    }
}
