//! Offline vendored subset of the `rand` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the slice of the `rand` API it uses: [`RngExt::random_range`] over
//! integer and float ranges, [`RngExt::random_bool`],
//! [`SeedableRng::seed_from_u64`],
//! and a deterministic [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64).
//! Determinism per seed is the property the workspace's tests rely on;
//! statistical quality is adequate for workload generation, not for
//! cryptography.

use std::ops::{Range, RangeInclusive};

/// A source of randomness. Used as a generic bound throughout the
/// workspace; only [`Rng::next_u64`] is required. The sampling helpers
/// live on [`RngExt`] so that every call site needs exactly one extension
/// trait in scope.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// A uniform sample from `range` (half-open or inclusive).
    ///
    /// Panics if the range is empty, matching the real crate.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(&mut || self.next_u64())
    }

    /// A uniform value of `T` over its full domain.
    fn random<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// `true` with probability `p` (values outside `[0,1]` clamp).
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64 (the upstream
    /// construction, so identical seeds give identical streams everywhere
    /// in the workspace).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Marker for full-domain sampling via [`Rng::random`].
pub trait Standard {
    fn from_bits(bits: u64) -> Self;
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

impl Standard for u32 {
    fn from_bits(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}

impl Standard for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> Self {
        unit_f64(bits)
    }
}

fn unit_f64(bits: u64) -> f64 {
    // 53 random mantissa bits → uniform in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types uniformly sampleable from a range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Sample uniformly from `[lo, hi)` given a raw 64-bit draw.
    fn sample_half_open(lo: Self, hi: Self, draw: &mut dyn FnMut() -> u64) -> Self;

    /// Sample uniformly from `[lo, hi]`. Implemented directly (not via
    /// `hi + 1`) so ranges ending at the type's maximum don't overflow.
    fn sample_inclusive(lo: Self, hi: Self, draw: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: Self, hi: Self, draw: &mut dyn FnMut() -> u64) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                Self::sample_inclusive(lo, hi - 1, draw)
            }

            fn sample_inclusive(lo: Self, hi: Self, draw: &mut dyn FnMut() -> u64) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                // Span fits u128 even for the full u64 domain. Modulo bias
                // is ≤ span/2^64 — irrelevant for workload generation and
                // tests, which is all this crate serves.
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                let off = (draw() as u128) % span;
                ((lo as i128) + off as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: Self, hi: Self, draw: &mut dyn FnMut() -> u64) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                lo + (unit_f64(draw()) as $t) * (hi - lo)
            }

            /// The inclusive upper bound is hit with probability ~0; the
            /// distinction is meaningless for floats.
            fn sample_inclusive(lo: Self, hi: Self, draw: &mut dyn FnMut() -> u64) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                if lo == hi { lo } else { Self::sample_half_open(lo, hi, draw) }
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Ranges acceptable to [`RngExt::random_range`].
pub trait SampleRange<T: SampleUniform> {
    fn sample_from(self, draw: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, draw: &mut dyn FnMut() -> u64) -> T {
        T::sample_half_open(self.start, self.end, draw)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, draw: &mut dyn FnMut() -> u64) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, draw)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn next_raw(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.next_raw()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s.iter().all(|&x| x == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let v: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&v));
            let v: f64 = rng.random_range(0.5..8.0);
            assert!((0.5..8.0).contains(&v));
            let v: u8 = rng.random_range(0..26u8);
            assert!(v < 26);
            let v: u16 = rng.random_range(49_152..=65_535u16);
            assert!(v >= 49_152);
        }
    }

    #[test]
    fn integer_samples_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
        assert!((0..1_000).all(|_| !rng.random_bool(0.0)));
        assert!((0..1_000).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn works_through_mut_reference_and_generics() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.random_range(0..100)
        }
        let mut rng = StdRng::seed_from_u64(5);
        let v = sample(&mut rng);
        assert!(v < 100);
        assert!(RngExt::random_bool(&mut rng, 0.5) || true);
    }

    #[test]
    fn full_range_values_cover_domain() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen_true = false;
        let mut seen_false = false;
        for _ in 0..64 {
            if rng.random::<bool>() {
                seen_true = true;
            } else {
                seen_false = true;
            }
        }
        assert!(seen_true && seen_false);
        let f: f64 = rng.random();
        assert!((0.0..1.0).contains(&f));
    }
}
