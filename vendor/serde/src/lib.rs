//! Offline vendored stub of `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on config structs as
//! forward-looking decoration, but contains no serde *format* crate and
//! never uses the traits as bounds — all real persistence goes through
//! `monilog-model::codec`. Since the build environment cannot reach
//! crates.io, this stub supplies the two marker traits and no-op derive
//! macros so those derives compile. If a future PR adds a format crate,
//! replace this stub with the real dependency.

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
