//! Offline vendored stub of `serde_derive`.
//!
//! The workspace's `#[derive(Serialize, Deserialize)]` attributes are
//! decoration (no format crate consumes the impls), so these derives
//! expand to nothing. The `serde` helper attribute is still registered so
//! any future `#[serde(...)]` field attribute parses.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
